"""Run reports: serializable records of benchmark runs.

The paper's progress-monitoring practice depends on *recorded* per-
component data from previous runs ("We compare each component's
performance to our previously recorded data").  This module turns a
:class:`~repro.core.driver.RunResult` (or an analytic estimate) into a
JSON-serializable report, and writes per-iteration traces as CSV so
they can be diffed/plotted outside Python.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.driver import RunResult
from repro.errors import ConfigurationError
from repro.obs.export import dumps_strict

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> model cycle
    from repro.model.perf_model import AnalyticResult


def _stats_summary(stats) -> Dict[str, Dict[str, float]]:
    """Aggregate per-rank category times: mean / max across ranks."""
    categories = sorted({k for st in stats for k in st.times})
    out: Dict[str, Dict[str, float]] = {}
    n = max(len(stats), 1)
    for cat in categories:
        values = [st.times.get(cat, 0.0) for st in stats]
        out[cat] = {
            "mean_s": sum(values) / n,
            "max_s": max(values),
        }
    return out


def run_report(
    result: "Union[RunResult, AnalyticResult]", obs=None
) -> Dict[str, object]:
    """A JSON-serializable record of one run.

    ``obs``, when given and enabled, contributes its metrics snapshot
    under ``"metrics"`` — the cross-campaign comparable numbers from the
    unified telemetry stream.
    """
    report: Dict[str, object] = {
        "kind": "exact" if getattr(result, "exact", False) else (
            "event" if isinstance(result, RunResult) else "analytic"
        ),
        "config": result.config.describe(),
        "elapsed_s": result.elapsed,
        "elapsed_factorization_s": result.elapsed_factorization,
        "elapsed_refinement_s": result.elapsed_refinement,
        "gflops_per_gcd": result.gflops_per_gcd,
        "total_flops_per_s": result.total_flops_per_s,
    }
    if isinstance(result, RunResult):
        report["ir_iterations"] = result.ir_iterations
        report["ir_converged"] = result.ir_converged
        report["engine_events"] = result.engine_events
        # Always recorded: NaN (simulated runs have no meaningful
        # residual) serializes as null via save_report's strict dump.
        report["residual_norm"] = result.residual_norm
        report["components"] = _stats_summary(result.stats)
        report["bytes_sent_total"] = sum(st.bytes_sent for st in result.stats)
        report["messages_total"] = sum(
            st.messages_sent for st in result.stats
        )
    else:
        report["breakdown_s"] = dict(result.breakdown)
    provenance = getattr(result, "provenance", None)
    if provenance is not None:
        report["provenance"] = provenance
    if obs is not None and obs.enabled and len(obs.metrics):
        report["metrics"] = obs.metrics.snapshot()
    return report


def save_report(result, path, obs=None) -> Path:
    """Write the JSON report; returns the path.

    The output is *strict* JSON: non-finite floats (e.g. the NaN
    ``residual_norm`` of simulated runs) are serialized as ``null``
    rather than Python's bare ``NaN`` token, which standard parsers
    reject.
    """
    path = Path(path)
    path.write_text(
        dumps_strict(run_report(result, obs=obs), indent=2, sort_keys=True)
    )
    return path


def load_report(path) -> Dict[str, object]:
    """Read a report written by :func:`save_report`."""
    return json.loads(Path(path).read_text())


def save_trace_csv(result: RunResult, path) -> Path:
    """Write the per-iteration trace (rank 0's Fig-10 data) as CSV."""
    if not isinstance(result, RunResult) or not result.trace:
        raise ConfigurationError(
            "no per-iteration trace on this result (analytic results and "
            "runs with collect_trace=False have none)"
        )
    path = Path(path)
    fields: List[str] = list(result.trace[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(result.trace)
    return path


def load_trace_csv(path) -> List[Dict[str, float]]:
    """Read a trace CSV back into records (floats where possible)."""
    out: List[Dict[str, float]] = []
    with Path(path).open() as fh:
        for row in csv.DictReader(fh):
            rec: Dict[str, float] = {}
            for key, val in row.items():
                try:
                    rec[key] = int(val)
                except ValueError:
                    rec[key] = float(val)
            out.append(rec)
    return out


def compare_reports(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Dict[str, float]:
    """Relative change of the headline metrics (current vs baseline).

    Positive ``elapsed_change`` means the current run is slower — the
    signal the early-termination watchdog keys on across whole runs.
    """
    def rel(key: str) -> float:
        b, c = baseline.get(key), current.get(key)
        if not isinstance(b, (int, float)) or not b:
            return float("nan")
        return (c - b) / b

    return {
        "elapsed_change": rel("elapsed_s"),
        "throughput_change": rel("gflops_per_gcd"),
        "refinement_change": rel("elapsed_refinement_s"),
    }
