"""HPL-AI submission-rule verification and run records.

The benchmark result only counts if the refined solution passes the
HPL-style acceptance test.  This module implements the checks as the
rules state them and produces a submission-style record:

- **accuracy**: the scaled residual

      ||A x - b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * N) < 16

  evaluated in FP64 with the matrix regenerated from the generator;
- **flop accounting**: the reported rate must use
  ``(2/3 N^3 + 3/2 N^2) / t`` regardless of the precisions used;
- **record**: the fields an HPL-AI submission reports (N, B, grid,
  achieved rate, residual, refinement count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.driver import RunResult
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.precision.types import FP64
from repro.util import flops as fl

#: HPL's acceptance threshold on the scaled residual.
ACCEPTANCE_THRESHOLD = 16.0


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of the acceptance test on a solved system."""

    n: int
    residual_inf: float
    a_norm_inf: float
    x_norm_inf: float
    b_norm_inf: float
    scaled_residual: float
    passed: bool

    def describe(self) -> str:
        """One-line PASSED/FAILED summary of the acceptance test."""
        verdict = "PASSED" if self.passed else "FAILED"
        return (
            f"||Ax-b||_inf = {self.residual_inf:.3e}, scaled residual = "
            f"{self.scaled_residual:.4f} (< {ACCEPTANCE_THRESHOLD:g}) -> "
            f"{verdict}"
        )


def _matrix_inf_norm(matrix: HplAiMatrix, chunk: int = 1024) -> float:
    """||A||_inf (max row sum) computed in streamed row chunks."""
    worst = 0.0
    for lo in range(0, matrix.n, chunk):
        hi = min(lo + chunk, matrix.n)
        rows = matrix.block(lo, hi, 0, matrix.n)
        worst = max(worst, float(np.max(np.sum(np.abs(rows), axis=1))))
    return worst


def verify_solution(
    x: np.ndarray,
    matrix: Optional[HplAiMatrix] = None,
    n: Optional[int] = None,
    seed: int = 42,
) -> VerificationReport:
    """Run the HPL acceptance test on a solution vector.

    Provide either ``matrix`` or ``(n, seed)`` to regenerate it.
    """
    if matrix is None:
        if n is None:
            raise ConfigurationError("pass either matrix or n")
        matrix = HplAiMatrix(n, seed)
    if x.shape != (matrix.n,):
        raise ConfigurationError(
            f"x has shape {x.shape}, expected ({matrix.n},)"
        )
    b = matrix.rhs()
    # Streamed FP64 A @ x.
    ax = np.zeros(matrix.n)
    chunk = 1024
    for lo in range(0, matrix.n, chunk):
        hi = min(lo + chunk, matrix.n)
        ax[lo:hi] = matrix.block(lo, hi, 0, matrix.n) @ x
    r_inf = float(np.max(np.abs(ax - b)))
    a_inf = _matrix_inf_norm(matrix)
    x_inf = float(np.max(np.abs(x)))
    b_inf = float(np.max(np.abs(b)))
    denom = FP64.eps * (a_inf * x_inf + b_inf) * matrix.n
    scaled = r_inf / denom if denom > 0 else float("inf")
    return VerificationReport(
        n=matrix.n,
        residual_inf=r_inf,
        a_norm_inf=a_inf,
        x_norm_inf=x_inf,
        b_norm_inf=b_inf,
        scaled_residual=scaled,
        passed=scaled < ACCEPTANCE_THRESHOLD,
    )


def submission_record(result: RunResult) -> Dict[str, object]:
    """The fields an HPL-AI submission reports, from a RunResult.

    For exact runs the accuracy check is re-evaluated from scratch (the
    submission rules require verification, not trust).
    """
    cfg = result.config
    record: Dict[str, object] = {
        "system": cfg.machine.name,
        "N": cfg.n,
        "NB": cfg.block,
        "P x Q": f"{cfg.p_rows} x {cfg.p_cols}",
        "GCDs": cfg.num_ranks,
        "time_s": result.elapsed,
        "flops_counted": fl.hpl_ai_flops(cfg.n),
        "rate_flops": fl.hpl_ai_flops(cfg.n) / result.elapsed,
        "refinement_iterations": result.ir_iterations,
    }
    if result.exact and result.x is not None:
        report = verify_solution(result.x, n=cfg.n, seed=cfg.seed)
        record["scaled_residual"] = report.scaled_residual
        record["verified"] = report.passed
    else:
        record["scaled_residual"] = None
        record["verified"] = None  # timing-only runs carry no data
    return record


def check_flop_accounting(result: RunResult) -> bool:
    """Assert the reported rate uses the HPL-AI flop count exactly."""
    expected = fl.per_gcd_gflops(
        result.config.n, result.config.num_ranks, result.elapsed
    )
    return bool(np.isclose(expected, result.gflops_per_gcd, rtol=1e-12))
