"""Top-level benchmark drivers.

Two entry points mirror the package's two fidelities:

- :func:`solve_hplai` — run the full distributed algorithm with *real
  data* on a (small) problem; the result contains the numerically exact
  solution, residual and refinement count alongside the simulated
  performance figures.
- :func:`simulate_run` — run the identical rank programs with phantom
  payloads at any scale the event engine can handle; only timing comes
  back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import BenchmarkConfig
from repro.core.executors import ExactExecutor, PhantomExecutor
from repro.core.hplai import hplai_rank_program
from repro.errors import ConfigurationError
from repro.machine import get_machine
from repro.machine.spec import MachineSpec
from repro.machine.topology import CommCosts
from repro.obs import context as obs_context
from repro.obs.provenance import run_provenance
from repro.scenario import Scenario, compile_scenario
from repro.simulate.engine import Engine, RankStats
from repro.util import flops as fl


@dataclass
class RunResult:
    """Outcome of one benchmark run (exact or simulated)."""

    config: BenchmarkConfig
    #: virtual wall-clock of the timed window (factorization + refinement)
    elapsed: float
    elapsed_factorization: float
    elapsed_refinement: float
    #: effective GFLOP/s per GCD, per the HPL-AI rules
    gflops_per_gcd: float
    #: total effective FLOP/s of the run
    total_flops_per_s: float
    ir_iterations: int
    ir_converged: bool
    exact: bool
    residual_norm: float = float("nan")
    x: Optional[np.ndarray] = None
    stats: List[RankStats] = field(default_factory=list)
    trace: List[dict] = field(default_factory=list)
    engine_events: int = 0
    #: run-provenance block (:func:`repro.obs.run_provenance`) so
    #: recorded runs are comparable across campaigns
    provenance: Optional[dict] = None
    #: :class:`~repro.obs.health.HealthReport` when the run was
    #: monitored (an enabled handle with ``obs.health`` set)
    health: Optional[object] = None

    def summary(self) -> Dict[str, object]:
        """Headline metrics merged with the configuration facts."""
        d = self.config.describe()
        d.update(
            elapsed_s=round(self.elapsed, 6),
            gflops_per_gcd=round(self.gflops_per_gcd, 2),
            total_flops=self.total_flops_per_s,
            ir_iterations=self.ir_iterations,
            ir_converged=self.ir_converged,
        )
        if self.exact:
            d["residual_norm"] = self.residual_norm
        return d


def run_benchmark(
    cfg: BenchmarkConfig,
    exact: bool,
    rate_multipliers: Optional[Sequence[float]] = None,
    global_speed: float = 1.0,
    collect_trace: bool = True,
    obs: Optional["obs_context.Observability"] = None,
    progress: Optional[List[dict]] = None,
    scenario: Optional[Scenario] = None,
) -> RunResult:
    """Execute one HPL-AI run on the event engine.

    Parameters
    ----------
    cfg:
        The run configuration.
    exact:
        Real data (numerically exact) vs phantom (timing only).
    rate_multipliers:
        Deprecated adapter for ``scenario=``: per-GCD speed multipliers
        (manufacturing variability / slow nodes), internally wrapped
        into a :class:`~repro.scenario.RateMultipliers` injection.
    global_speed:
        Deprecated adapter for ``scenario=``: uniform speed multiplier
        (warm-up effects, Fig 12); applied on top of
        ``rate_multipliers``.
    obs:
        Observability handle; ``None`` uses the process-wide one
        (disabled no-op by default).  When enabled, the engine/executor/
        comm layers emit spans and metrics into it, driver-level phase
        spans are added, and the handle keeps the run's provenance.
    progress:
        Replacement sink for rank 0's per-panel-column trace records.
        A :class:`~repro.obs.analysis.LiveProgressReporter` here turns
        the run chatty: each appended column is narrated as it lands.
        Implies trace collection regardless of ``collect_trace``.
    scenario:
        A :class:`~repro.scenario.Scenario` of composed injections
        (slow ranks, limplock, crash/restart, link jitter, ...).  The
        scenario is compiled against ``cfg`` — all validation (rank
        bounds, multiplier positivity) happens in that shared path —
        and drives the engine's rate schedules and link perturbations.
        Mutually exclusive with the deprecated raw parameters.
    """
    if global_speed <= 0:
        raise ConfigurationError(f"global_speed must be positive, got {global_speed}")
    if scenario is None:
        scenario = Scenario.from_legacy(
            rate_multipliers=rate_multipliers, global_speed=global_speed
        )
    elif rate_multipliers is not None or global_speed != 1.0:
        raise ConfigurationError(
            "pass scenario= or the legacy rate_multipliers/global_speed "
            "parameters, not both"
        )
    compiled = compile_scenario(scenario, cfg)
    if exact and cfg.panel_precision == "fp16":
        # bf16 panels have FP32's exponent range: no underflow cap.
        from repro.lcg.matrix import HplAiMatrix

        HplAiMatrix(cfg.n, cfg.seed).check_fp16_safe()

    costs = CommCosts(
        cfg.machine, port_binding=cfg.port_binding, gpu_aware=cfg.gpu_aware
    )
    obs = obs if obs is not None else obs_context.current()
    health = getattr(obs, "health", None) if obs.enabled else None
    if health is not None:
        health.attach(obs)
        health.bind_run(cfg)
    engine = Engine(
        cfg.num_ranks,
        costs,
        node_of_rank=cfg.node_grid.node_of_rank,
        mpi=cfg.machine.mpi,
        rate_multipliers=compiled.static_multipliers,
        rate_plan=compiled.rate_plan,
        link_plan=compiled.link_plan,
        obs=obs,
    )

    trace: List[dict] = progress if progress is not None else []
    exec_cls = ExactExecutor if exact else PhantomExecutor

    def factory(rank: int):
        p_ir, p_ic = cfg.grid.coords_of(rank)
        ex = exec_cls(cfg, p_ir, p_ic, rank)
        return hplai_rank_program(
            cfg, ex, rank,
            trace if (collect_trace or progress is not None) else None,
        )

    # Install the handle for the duration of the run so instrumentation
    # points that read the process-wide handle (executors, comm facade)
    # land in the same tracer/registry the engine was given.
    with obs_context.use(obs):
        outcome = engine.run(factory)

    # Phase times: every rank's timed window is barrier-aligned, so take
    # rank 0's markers.
    r0 = outcome.returns[0]
    elapsed = max(ret["t_total"] for ret in outcome.returns)
    t_fact = max(ret["t_factorization"] for ret in outcome.returns)
    t_ir = max(ret["t_refinement"] for ret in outcome.returns)
    gflops = fl.per_gcd_gflops(cfg.n, cfg.num_ranks, elapsed)

    result = RunResult(
        config=cfg,
        elapsed=elapsed,
        elapsed_factorization=t_fact,
        elapsed_refinement=t_ir,
        gflops_per_gcd=gflops,
        total_flops_per_s=fl.hpl_ai_flops(cfg.n) / elapsed,
        ir_iterations=r0["ir_iterations"],
        ir_converged=r0["ir_converged"],
        exact=exact,
        stats=list(outcome.stats),
        trace=trace,
        engine_events=outcome.events,
        provenance=run_provenance(cfg),
    )
    if exact:
        result.residual_norm = r0["residual_norm"]
        result.x = r0["x"]
    if obs.enabled:
        _record_run_telemetry(obs, cfg, result, r0["t_start"])
    if health is not None:
        result.health = health.finalize(result)
    return result


def _record_run_telemetry(obs, cfg, result: RunResult, t_start: float) -> None:
    """Driver-level spans + headline metrics for one finished run."""
    obs.provenance = result.provenance
    t_fact_end = t_start + result.elapsed_factorization
    tracer = obs.tracer
    tracer.add("factorization", "driver", t_start, t_fact_end)
    tracer.add(
        "refinement", "driver", t_fact_end,
        t_fact_end + result.elapsed_refinement,
        attrs={"iterations": result.ir_iterations,
               "converged": result.ir_converged},
    )
    m = obs.metrics
    m.gauge("run.elapsed_s").set(result.elapsed)
    m.gauge("run.gflops_per_gcd").set(result.gflops_per_gcd)
    m.counter("run.ir_iterations").inc(result.ir_iterations)
    m.counter("run.count").inc()
    if result.stats and result.elapsed > 0:
        wait = sum(st.total_wait for st in result.stats)
        m.gauge("run.wait_fraction").set(
            wait / (result.elapsed * len(result.stats))
        )
    h = m.histogram("driver.iteration_s")
    for entry in result.trace:
        h.observe(
            entry.get("panel", 0.0) + entry.get("gemm", 0.0)
            + entry.get("recv", 0.0)
        )


def solve_hplai(
    n: int,
    block: int,
    p_rows: int = 1,
    p_cols: int = 1,
    machine: MachineSpec | str = "summit",
    **kwargs,
) -> RunResult:
    """Solve an HPL-AI system exactly on a simulated distributed machine.

    Convenience wrapper: builds the configuration, runs the real-data
    distributed algorithm, and returns the :class:`RunResult` whose
    ``x`` solves ``A x = b`` to FP64 accuracy.

    >>> res = solve_hplai(n=256, block=32, p_rows=2, p_cols=2)
    >>> res.ir_converged
    True
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    cfg = BenchmarkConfig(
        n=n, block=block, machine=machine, p_rows=p_rows, p_cols=p_cols, **kwargs
    )
    return run_benchmark(cfg, exact=True)


def simulate_run(
    cfg: BenchmarkConfig,
    rate_multipliers: Optional[Sequence[float]] = None,
    global_speed: float = 1.0,
    obs: Optional["obs_context.Observability"] = None,
    progress: Optional[List[dict]] = None,
    scenario: Optional[Scenario] = None,
) -> RunResult:
    """Timing-only run of the full rank programs at any engine scale."""
    return run_benchmark(
        cfg,
        exact=False,
        rate_multipliers=rate_multipliers,
        global_speed=global_speed,
        obs=obs,
        progress=progress,
        scenario=scenario,
    )
