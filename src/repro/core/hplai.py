"""The distributed HPL-AI factorization rank program (Algorithm 1).

One generator per rank, engine-agnostic: local math and its modelled
cost come from the executor (exact or phantom), communication goes
through :class:`repro.comm.RankComm` using the routed (hardware-
progressed) broadcasts.

Two schedules are provided:

- **synchronous** (``lookahead=False``): each step factors the diagonal,
  solves and broadcasts the panels, then updates the whole trailing
  matrix — communication sits on the critical path;
- **look-ahead** (``lookahead=True``, Section IV-B): while the step-k
  panels update the bulk of the trailing matrix, the step-(k+1) column
  and row strips are updated first, factored, solved, cast, and their
  broadcasts *initiated* — so the panel broadcast rides under the big
  GEMM and the last two terms of eq. (1) become
  ``max(T_BCAST_PANEL, T_GEMM)``.

Wire-tag layout: step ``k`` uses logical tags ``8k .. 8k+5``
(diag-row, diag-col, U-panel, L-panel); iterative refinement uses a
disjoint high window (see :mod:`repro.core.refine`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.comm.vmpi import RankComm
from repro.core.config import BenchmarkConfig
from repro.core.executors import ExecutorBase
from repro.core.refine import refinement_phase
from repro.obs.phases import (
    STEP_STRIDE,
    TAG_DIAG_COL,
    TAG_DIAG_ROW,
    TAG_L_PANEL,
    TAG_U_PANEL,
)
from repro.simulate.events import Barrier, Compute, Now


def _tag(k: int, phase: int) -> int:
    return STEP_STRIDE * k + phase


def _diag_phase(cfg: BenchmarkConfig, ex: ExecutorBase, comm: RankComm, k: int):
    """Factor A(k,k) on its owner and broadcast it along the pivot row
    and column (Algorithm 1 lines 7-10).  Returns the packed LU diag
    block on every participating rank (None elsewhere)."""
    grid = cfg.grid
    plan = ex.plan(k)
    owner_rank = grid.rank_of(plan.owner_row, plan.owner_col)
    diag = None
    if plan.is_owner:
        diag, secs = ex.getrf_diag(k)
        yield Compute("getrf", secs)
    if plan.in_pivot_row and cfg.p_cols > 1:
        members = grid.row_members(plan.owner_row)
        if plan.is_owner:
            yield from comm.bcast_start(
                diag, owner_rank, members, _tag(k, TAG_DIAG_ROW),
                algorithm=cfg.diag_algorithm,
            )
        else:
            diag = yield from comm.bcast_finish(owner_rank, _tag(k, TAG_DIAG_ROW))
    if plan.in_pivot_col and cfg.p_rows > 1:
        members = grid.col_members(plan.owner_col)
        if plan.is_owner:
            yield from comm.bcast_start(
                diag, owner_rank, members, _tag(k, TAG_DIAG_COL),
                algorithm=cfg.diag_algorithm,
            )
        else:
            diag = yield from comm.bcast_finish(owner_rank, _tag(k, TAG_DIAG_COL))
    return diag


def _panel_compute(cfg, ex, comm, k: int, diag):
    """TRSM + cast the panels this rank owns (lines 11-15 / 20-24).

    Returns ``(u16t, l16)`` with the panels this rank *produced* (None
    for the ones it will receive).
    """
    plan = ex.plan(k)
    u16t = l16 = None
    if plan.in_pivot_row and plan.trail_cols > 0:
        secs = ex.trsm_row_panel(k, diag)
        yield Compute("trsm", secs)
        u16t, secs = ex.trans_cast_u(k)
        yield Compute("cast", secs)
    if plan.in_pivot_col and plan.trail_rows > 0:
        secs = ex.trsm_col_panel(k, diag)
        yield Compute("trsm", secs)
        l16, secs = ex.cast_l(k)
        yield Compute("cast", secs)
    return u16t, l16


def _panel_bcast_start(cfg, ex, comm: RankComm, k: int, u16t, l16):
    """Initiate the two panel broadcasts (lines 16 / 25) from the roots."""
    grid = cfg.grid
    plan = ex.plan(k)
    p_ir, p_ic = ex.p_ir, ex.p_ic
    if plan.trail_cols > 0 and cfg.p_rows > 1 and plan.in_pivot_row:
        # I own the U chunk for my process column; send it down the column.
        members = grid.col_members(p_ic)
        root = grid.rank_of(plan.owner_row, p_ic)
        yield from comm.bcast_start(u16t, root, members, _tag(k, TAG_U_PANEL))
    if plan.trail_rows > 0 and cfg.p_cols > 1 and plan.in_pivot_col:
        members = grid.row_members(p_ir)
        root = grid.rank_of(p_ir, plan.owner_col)
        yield from comm.bcast_start(l16, root, members, _tag(k, TAG_L_PANEL))


def _panel_bcast_finish(cfg, ex, comm: RankComm, k: int, u16t, l16):
    """Receive the panels this rank did not produce."""
    grid = cfg.grid
    plan = ex.plan(k)
    if plan.trail_cols > 0 and not plan.in_pivot_row and cfg.p_rows > 1:
        root = grid.rank_of(plan.owner_row, ex.p_ic)
        u16t = yield from comm.bcast_finish(root, _tag(k, TAG_U_PANEL))
    if plan.trail_rows > 0 and not plan.in_pivot_col and cfg.p_cols > 1:
        root = grid.rank_of(ex.p_ir, plan.owner_col)
        l16 = yield from comm.bcast_finish(root, _tag(k, TAG_L_PANEL))
    return u16t, l16


def _full_panel_step(cfg, ex, comm, k: int):
    """Synchronous diagonal + panel phase; returns (u16t, l16)."""
    if cfg.progression == "inband":
        return (yield from _full_panel_step_inband(cfg, ex, comm, k))
    diag = yield from _diag_phase(cfg, ex, comm, k)
    u16t, l16 = yield from _panel_compute(cfg, ex, comm, k, diag)
    yield from _panel_bcast_start(cfg, ex, comm, k, u16t, l16)
    u16t, l16 = yield from _panel_bcast_finish(cfg, ex, comm, k, u16t, l16)
    return u16t, l16


def _full_panel_step_inband(cfg, ex, comm, k: int):
    """The no-async-progression variant: every broadcast runs in-band
    (relay forwarding executes inside the rank programs, via the
    generators in :mod:`repro.comm.bcast` / :mod:`repro.comm.ring`)."""
    grid = cfg.grid
    plan = ex.plan(k)
    p_ir, p_ic = ex.p_ir, ex.p_ic
    owner_rank = grid.rank_of(plan.owner_row, plan.owner_col)
    diag = None
    if plan.is_owner:
        diag, secs = ex.getrf_diag(k)
        yield Compute("getrf", secs)
    if plan.in_pivot_row and cfg.p_cols > 1:
        diag = yield from comm.bcast(
            diag, owner_rank, grid.row_members(plan.owner_row),
            _tag(k, TAG_DIAG_ROW), algorithm=cfg.diag_algorithm,
        )
    if plan.in_pivot_col and cfg.p_rows > 1:
        diag = yield from comm.bcast(
            diag, owner_rank, grid.col_members(plan.owner_col),
            _tag(k, TAG_DIAG_COL), algorithm=cfg.diag_algorithm,
        )
    u16t, l16 = yield from _panel_compute(cfg, ex, comm, k, diag)
    if plan.trail_cols > 0 and cfg.p_rows > 1:
        root = grid.rank_of(plan.owner_row, p_ic)
        u16t = yield from comm.bcast(
            u16t, root, grid.col_members(p_ic), _tag(k, TAG_U_PANEL)
        )
    if plan.trail_rows > 0 and cfg.p_cols > 1:
        root = grid.rank_of(p_ir, plan.owner_col)
        l16 = yield from comm.bcast(
            l16, root, grid.row_members(p_ir), _tag(k, TAG_L_PANEL)
        )
    return u16t, l16


def factorization_phase(
    cfg: BenchmarkConfig,
    ex: ExecutorBase,
    comm: RankComm,
    trace: Optional[List[dict]] = None,
):
    """Run the block LU factorization; yields engine ops.

    ``trace``, when given (rank 0), receives one dict per iteration with
    wall-clock phase boundaries for the Fig-10 style breakdown.
    """
    nb = cfg.num_blocks

    if not cfg.lookahead:
        for k in range(nb):
            t0 = yield Now()
            u16t, l16 = yield from _full_panel_step(cfg, ex, comm, k)
            t1 = yield Now()
            secs = ex.gemm_trailing(k, u16t=u16t, l16=l16, skip_row=False,
                                    skip_col=False)
            yield Compute("gemm", secs)
            if trace is not None:
                t2 = yield Now()
                trace.append({"k": k, "panel": t1 - t0, "gemm": t2 - t1,
                              "recv": 0.0})
        return

    # -- look-ahead schedule -------------------------------------------------
    u16t, l16 = yield from _full_panel_step(cfg, ex, comm, 0)
    for k in range(nb):
        nxt = k + 1
        plan = ex.plan(k)
        owns_next_row = plan.owns_next_row
        owns_next_col = plan.owns_next_col
        t0 = yield Now()
        if nxt < nb:
            # Pre-update the strips the next panels live in.
            if owns_next_col:
                secs = ex.strip_col_update(k, l16, u16t)
                yield Compute("gemm", secs)
            if owns_next_row:
                secs = ex.strip_row_update(k, l16, u16t, owns_next_col)
                yield Compute("gemm", secs)
            # Factor/solve/cast the next panels and launch their broadcasts.
            diag_next = yield from _diag_phase(cfg, ex, comm, nxt)
            nxt_u, nxt_l = yield from _panel_compute(cfg, ex, comm, nxt, diag_next)
            yield from _panel_bcast_start(cfg, ex, comm, nxt, nxt_u, nxt_l)
        t1 = yield Now()
        # The bulk trailing update overlaps the panel broadcasts in flight.
        secs = ex.gemm_trailing(
            k, l16=l16, u16t=u16t, skip_row=owns_next_row, skip_col=owns_next_col
        )
        yield Compute("gemm", secs)
        t2 = yield Now()
        if nxt < nb:
            u16t, l16 = yield from _panel_bcast_finish(cfg, ex, comm, nxt, nxt_u, nxt_l)
        if trace is not None:
            t3 = yield Now()
            trace.append(
                {"k": k, "panel": t1 - t0, "gemm": t2 - t1, "recv": t3 - t2}
            )


def hplai_rank_program(
    cfg: BenchmarkConfig,
    ex: ExecutorBase,
    rank: int,
    trace: Optional[List[dict]] = None,
):
    """Full benchmark program for one rank: fill, factorize, refine.

    Returns a dict with the executor's result payload plus the wall-clock
    phase boundaries (virtual seconds).
    """
    comm = RankComm(
        rank,
        cfg.machine.mpi,
        bcast_algorithm=cfg.bcast_algorithm,
        ring_segments=cfg.ring_segments,
        node_of=cfg.node_grid.node_of_rank,
    )
    comm.allreduce_algorithm = cfg.allreduce_algorithm
    everyone = tuple(range(cfg.num_ranks))

    secs = ex.fill_local()
    yield Compute("fill", secs)
    yield Barrier(everyone)
    t_start = yield Now()

    my_trace = trace if rank == 0 else None
    yield from factorization_phase(cfg, ex, comm, my_trace)

    secs = ex.transfer_to_host()
    yield Compute("d2h", secs)
    yield Barrier(everyone)
    t_fact = yield Now()

    if cfg.refinement_solver == "gmres":
        from repro.core.gmres import gmres_refinement_phase

        ir_info = yield from gmres_refinement_phase(cfg, ex, comm)
    else:
        ir_info = yield from refinement_phase(cfg, ex, comm)
    yield Barrier(everyone)
    t_end = yield Now()

    result = ex.result_payload()
    result.update(
        t_start=t_start,
        t_factorization=t_fact - t_start,
        t_refinement=t_end - t_fact,
        t_total=t_end - t_start,
        ir_converged=ir_info["converged"],
        ir_iterations=ir_info["iterations"],
    )
    return result
