"""Distributed FP64 iterative refinement (Algorithm 1 lines 31-49).

Per refinement iteration:

1. **Residual** — every rank that owns a diagonal block regenerates its
   block-columns of A from the LCG in FP64 and multiplies by its slice
   of x; a single Allreduce sums the partial products into
   ``r = b - A x`` (lines 34-43).
2. **Convergence test** — line 44's threshold, identical on all ranks.
3. **Correction** — ``d = U^{-1}(L^{-1} r)`` via *distributed* blocked
   triangular solves over the FP32 factors resident from the
   factorization: for each block step, partial right-hand-side
   contributions are reduced across the pivot process row to the
   diagonal owner, the owner runs a B×B TRSV, and the segment solution
   is broadcast down the pivot process column whose ranks fold
   ``-T(i,j) w_j`` into their local accumulators.  Each sweep therefore
   costs ``n_b`` × (row-Reduce(B) + column-Bcast(B)) plus local block
   GEMVs, and one Allreduce re-replicates the solved vector.
4. **Update** — ``x <- x + d`` (line 48).

Wire tags live above the factorization window (see ``_REFINE_TAG_BASE``).
"""

from __future__ import annotations

from repro.comm.vmpi import RankComm
from repro.core.config import BenchmarkConfig
from repro.core.executors import ExecutorBase
from repro.obs.phases import IR_TAG_BASE as _REFINE_TAG_BASE
from repro.simulate.events import Compute


def _sweep_tag(cfg: BenchmarkConfig, iteration: int, j: int, upper: bool) -> int:
    nb = cfg.num_blocks
    return _REFINE_TAG_BASE + ((iteration * 2 + (1 if upper else 0)) * nb + j)


def triangular_sweep(
    cfg: BenchmarkConfig,
    ex: ExecutorBase,
    comm: RankComm,
    rhs,
    lower: bool,
    iteration: int,
):
    """One distributed blocked TRSV sweep (forward if ``lower``)."""
    grid = cfg.grid
    nb = cfg.num_blocks
    order = range(nb) if lower else range(nb - 1, -1, -1)
    ex.ir_reset_sweep(lower)
    for j in order:
        jr, jc = j % cfg.p_rows, j % cfg.p_cols
        owner = grid.rank_of(jr, jc)
        w = None
        if ex.p_ir == jr:
            contrib, secs = ex.ir_row_contrib(j, rhs, lower)
            if secs:
                yield Compute("ir_gemv", secs)
            if cfg.p_cols > 1:
                y = yield from comm.reduce(contrib, owner, grid.row_members(jr))
            else:
                y = contrib
            if comm.rank == owner:
                w, secs = ex.ir_diag_solve(j, y, lower)
                yield Compute("trsv", secs)
                ex.ir_store_solution_segment(j, w)
        if ex.p_ic == jc:
            tag = _sweep_tag(cfg, iteration, j, upper=not lower)
            if cfg.p_rows > 1:
                members = grid.col_members(jc)
                if comm.rank == owner:
                    yield from comm.bcast_start(
                        w, owner, members, tag, algorithm="bcast"
                    )
                else:
                    w = yield from comm.bcast_finish(owner, tag)
            secs = ex.ir_col_update(j, w, lower)
            yield Compute("ir_gemv", secs)
    # Work that overlapped the sweep's serial chain still has to finish
    # before the sweep's result is complete.
    secs = ex.ir_sweep_deferred()
    if secs:
        yield Compute("ir_gemv", secs)


def refinement_phase(cfg: BenchmarkConfig, ex: ExecutorBase, comm: RankComm):
    """Run iterative refinement to convergence (exact) or to the fixed
    modelled depth (phantom).  Returns ``{"converged", "iterations"}``."""
    everyone = tuple(range(cfg.num_ranks))
    secs = ex.ir_setup()
    yield Compute("ir_setup", secs)

    converged = False
    iterations = 0
    for it in range(cfg.ir_max_iters):
        partial, secs = ex.ir_residual_partial()
        yield Compute("gemv", secs)
        r = yield from comm.allreduce(partial, everyone)
        if ex.ir_converged(r):
            converged = True
            break
        iterations += 1
        # d = U^{-1} (L^{-1} r): forward then backward distributed sweeps.
        yield from triangular_sweep(cfg, ex, comm, r, lower=True, iteration=it)
        wp, secs = ex.ir_solution_partial()
        if secs:
            yield Compute("ir_gemv", secs)
        w = yield from comm.allreduce(wp, everyone)
        yield from triangular_sweep(cfg, ex, comm, w, lower=False, iteration=it)
        dp, _secs = ex.ir_solution_partial()
        d = yield from comm.allreduce(dp, everyone)
        secs = ex.ir_apply_correction(d)
        yield Compute("ir_update", secs)
    return {"converged": converged, "iterations": iterations}
