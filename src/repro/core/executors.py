"""Per-rank executors: local storage, kernels, and their modelled times.

The factorization and refinement rank programs
(:mod:`repro.core.hplai`, :mod:`repro.core.refine`) are written against
the executor interface so the *same* program runs in two modes:

- :class:`ExactExecutor` — allocates the FP32 local matrix, performs the
  real NumPy kernels (so the run is numerically exact and the residual
  is meaningful) *and* charges the machine model's kernel times;
- :class:`PhantomExecutor` — no data, identical shapes and charged
  times; scales to thousands of ranks.

All methods return ``(payload, seconds)`` or plain ``seconds``; the rank
program yields ``Compute(kind, seconds)`` ops so the engine accounts for
time (and applies per-GCD variability).
"""

from __future__ import annotations

import contextlib
from typing import Optional, Tuple

import numpy as np

from repro.blas.shim import get_shim
from repro.core.config import BenchmarkConfig
from repro.core.layout import StepPlan, make_step_plan
from repro.errors import ConfigurationError
from repro.lcg.matrix import HplAiMatrix
from repro.obs import context as obs_context
from repro.precision.analysis import hpl_ai_tolerance
from repro.simulate.phantom import PhantomArray
from repro.util import flops as fl

#: GEMM-rate histogram buckets (GFLOP/s): decades with 1/2/5 steps,
#: spanning laptop BLAS to several GCD-peak tensor-core rates
_GFLOPS_BUCKETS = tuple(
    m * 10.0 ** e for e in range(0, 6) for m in (1.0, 2.0, 5.0)
)


class ExecutorBase:
    """Shared layout/timing logic; subclasses add (or omit) the data."""

    #: True when matrix data exists and results are numerically meaningful
    exact = False

    def __init__(self, cfg: BenchmarkConfig, p_ir: int, p_ic: int, rank: int):
        self.cfg = cfg
        self.p_ir = p_ir
        self.p_ic = p_ic
        self.rank = rank
        self.km = cfg.machine.gpu_kernels
        self.cm = cfg.machine.cpu_kernels
        self.b = cfg.block
        self._ir_iter = 0
        # Triangular-sweep work that overlaps the solve's serial chain
        # (pipelined distributed TRSV): accumulated off the critical path
        # and charged once per sweep.
        self._deferred_gemv_s = 0.0
        # Observability: GEMM-rate histogram + per-kernel call counters,
        # resolved once so the enabled path avoids registry lookups.
        obs = obs_context.current()
        self._obs_on = obs.enabled
        if self._obs_on:
            self._h_gemm_gflops = obs.metrics.histogram(
                "executor.gemm_gflops", boundaries=_GFLOPS_BUCKETS
            )
            self._kernel_calls = obs.metrics.counter
            self._tracer = obs.tracer
        # Health telemetry: per-rank step-progress reporting (the
        # trailing update is the once-per-column landmark).
        self._health = (
            getattr(obs, "health", None) if self._obs_on else None
        )

    def _note_step(self, k: int) -> None:
        """Report column ``k``'s trailing update to the health monitor."""
        if self._health is not None:
            self._health.note_step(self.rank, k)

    def _hotpath_span(self, name: str):
        """Wall-clock span around an optimized hot region (obs-enabled
        runs only); virtual engine time is charged separately."""
        if self._obs_on:
            return self._tracer.span(name, "hotpath", self.rank, clock="wall")
        return contextlib.nullcontext()

    # -- layout ------------------------------------------------------------

    def plan(self, k: int) -> StepPlan:
        """Layout facts for step k (cached-free, pure arithmetic)."""
        return make_step_plan(self.cfg, self.p_ir, self.p_ic, k)

    # -- timing helpers ---------------------------------------------------------

    def _t_fill(self) -> float:
        n_elems = self.cfg.local_rows * self.cfg.local_cols
        regen = self.cm.regen_time(n_elems)
        h2d = self.km.h2d_time(n_elems * 4)  # FP32 upload
        return regen + h2d

    def _t_getrf(self) -> float:
        if self._obs_on:
            self._kernel_calls("executor.kernel_calls", kind="getrf").inc()
        return self.km.getrf_time(self.b)

    def _t_trsm(self, nrhs: int) -> float:
        if nrhs <= 0:
            return 0.0
        if self._obs_on:
            self._kernel_calls("executor.kernel_calls", kind="trsm").inc()
        return self.km.trsm_time(self.b, nrhs)

    def _t_cast(self, rows: int, cols: int) -> float:
        return self.km.cast_time(rows * cols) if rows * cols > 0 else 0.0

    def _t_gemm(self, m: int, n: int) -> float:
        if m <= 0 or n <= 0:
            return 0.0
        secs = self.km.gemm_time(m, n, self.b, lda=self.cfg.local_rows)
        if self._obs_on and secs > 0:
            self._h_gemm_gflops.observe(2.0 * m * n * self.b / secs / 1e9)
            self._kernel_calls("executor.kernel_calls", kind="gemm").inc()
        return secs

    def _t_d2h(self) -> float:
        return self.km.h2d_time(self.cfg.local_rows * self.cfg.local_cols * 4)

    # -- IR timing ------------------------------------------------------------

    def _t_ir_residual(self) -> float:
        # Each rank regenerates its local rows of every block-column its
        # process column owns: N_Lr x B entries per owned column, i.e.
        # N^2 / P entries per rank per refinement iteration.
        cols = self.cfg.col_dim.blocks_per_proc
        entries = cols * self.cfg.local_rows * self.b
        return self.cm.regen_time(entries) + self.cm.gemv_time(
            self.cfg.local_rows, cols * self.b
        )

    def _t_ir_block_gemv(self, nblocks: int) -> float:
        if nblocks <= 0:
            return 0.0
        return self.cm.gemv_time(nblocks * self.b, self.b)

    def _charge_col_update(self, nblocks: int) -> float:
        """Pipelined sweep timing: only the block feeding the *next*
        segment's reduce sits on the serial chain; the rest is deferred
        and charged at sweep end (it overlaps other columns' steps)."""
        if nblocks <= 0:
            return 0.0
        self._deferred_gemv_s += self._t_ir_block_gemv(nblocks - 1)
        return self._t_ir_block_gemv(1)

    def ir_sweep_deferred(self) -> float:
        """Off-critical-path sweep work accumulated since the last call."""
        secs = self._deferred_gemv_s
        self._deferred_gemv_s = 0.0
        return secs


class PhantomExecutor(ExecutorBase):
    """Timing-only executor: payloads are :class:`PhantomArray` stand-ins."""

    exact = False

    def __init__(self, cfg: BenchmarkConfig, p_ir: int, p_ic: int, rank: int):
        super().__init__(cfg, p_ir, p_ic, rank)

    # -- factorization ---------------------------------------------------------

    def fill_local(self) -> float:
        """Charge the local fill (regen + upload) time."""
        return self._t_fill()

    def getrf_diag(self, k: int) -> Tuple[PhantomArray, float]:
        """Phantom diagonal factor + its modelled time."""
        return PhantomArray((self.b, self.b), np.float32), self._t_getrf()

    def trsm_row_panel(self, k: int, diag) -> float:
        """Modelled U-panel TRSM time."""
        return self._t_trsm(self.plan(k).trail_cols)

    def trans_cast_u(self, k: int) -> Tuple[PhantomArray, float]:
        """Phantom U16 panel + cast time."""
        cols = self.plan(k).trail_cols
        return (
            PhantomArray((cols, self.b), np.float16),
            self._t_cast(cols, self.b),
        )

    def trsm_col_panel(self, k: int, diag) -> float:
        """Modelled L-panel TRSM time."""
        return self._t_trsm(self.plan(k).trail_rows)

    def cast_l(self, k: int) -> Tuple[PhantomArray, float]:
        """Phantom L16 panel + cast time."""
        rows = self.plan(k).trail_rows
        return (
            PhantomArray((rows, self.b), np.float16),
            self._t_cast(rows, self.b),
        )

    def strip_col_update(self, k: int, l16, u16t) -> float:
        """Modelled look-ahead column-strip GEMM time."""
        return self._t_gemm(self.plan(k).trail_rows, self.b)

    def strip_row_update(self, k: int, l16, u16t, owns_col: bool) -> float:
        """Modelled look-ahead row-strip GEMM time."""
        p = self.plan(k)
        cols = p.trail_cols - (self.b if owns_col else 0)
        return self._t_gemm(self.b, cols)

    def gemm_trailing(self, k: int, l16, u16t, skip_row: bool, skip_col: bool) -> float:
        """Modelled trailing-update GEMM time."""
        self._note_step(k)
        p = self.plan(k)
        m = p.trail_rows - (self.b if skip_row else 0)
        n = p.trail_cols - (self.b if skip_col else 0)
        return self._t_gemm(m, n)

    def transfer_to_host(self) -> float:
        """Modelled device-to-host transfer time."""
        return self._t_d2h()

    # -- iterative refinement ------------------------------------------------

    def ir_setup(self) -> float:
        """Charge refinement setup (b / diag generation)."""
        # Generate b and diag(A); initial x = b / diag(A).
        return self.cm.regen_time(2 * self.cfg.n)

    def ir_residual_partial(self) -> Tuple[PhantomArray, float]:
        """Phantom residual partial + its regen/GEMV time."""
        return (
            PhantomArray((self.cfg.n,), np.float64),
            self._t_ir_residual(),
        )

    def ir_converged(self, r) -> bool:
        """Phantom runs charge a fixed refinement depth."""
        self._ir_iter += 1
        return self._ir_iter > self.cfg.ir_fixed_iters

    def ir_row_contrib(self, j: int, r, lower: bool) -> Tuple[PhantomArray, float]:
        """Phantom sweep contribution segment."""
        return PhantomArray((self.b,), np.float64), 0.0

    def ir_diag_solve(self, j: int, y, lower: bool) -> Tuple[PhantomArray, float]:
        """Phantom solved segment + TRSV time."""
        return PhantomArray((self.b,), np.float64), self.cm.trsv_time(self.b)

    def ir_col_update(self, j: int, w, lower: bool) -> float:
        """Charge the sweep's local block-GEMV updates."""
        nblocks = self._col_update_blocks(j, lower)
        return self._charge_col_update(nblocks)

    def _col_update_blocks(self, j: int, lower: bool) -> int:
        if lower:
            return self.cfg.row_dim.local_blocks_at_or_after(self.p_ir, j + 1)
        total = self.cfg.row_dim.blocks_per_proc
        return total - self.cfg.row_dim.local_blocks_at_or_after(self.p_ir, j)

    def ir_store_solution_segment(self, j: int, w) -> None:
        """No state to keep in phantom mode."""

    def ir_solution_partial(self) -> Tuple[PhantomArray, float]:
        """Phantom assembled solution vector."""
        return PhantomArray((self.cfg.n,), np.float64), 0.0

    def ir_matvec_partial(self, v) -> Tuple[PhantomArray, float]:
        """Partial ``A @ v`` (same cost structure as the residual)."""
        return (
            PhantomArray((self.cfg.n,), np.float64),
            self._t_ir_residual(),
        )

    def ir_apply_correction(self, d) -> float:
        """Charge the x-update (axpy) time."""
        return self.cm.gemv_time(1, self.cfg.n)  # axpy-scale cost

    def ir_reset_sweep(self, lower: bool) -> None:
        """No state to reset in phantom mode."""

    def result_payload(self) -> dict:
        """Timing-only result fields."""
        return {
            "exact": False,
            "ir_iterations": self.cfg.ir_fixed_iters,
        }


class ExactExecutor(ExecutorBase):
    """Real-data executor: NumPy kernels + the same modelled times."""

    exact = True

    def __init__(self, cfg: BenchmarkConfig, p_ir: int, p_ic: int, rank: int):
        super().__init__(cfg, p_ir, p_ic, rank)
        self.matrix = HplAiMatrix(cfg.n, cfg.seed)
        self.shim = get_shim(cfg.machine.platform)
        #: global element index of every owned column / row-block, for
        #: bulk gather and scatter on the hot paths
        self._gcols = cfg.col_dim.element_indices(p_ic)
        self._grow_blocks = (
            np.arange(cfg.row_dim.blocks_per_proc, dtype=np.int64)
            * cfg.p_rows + p_ir
        )
        self.local: Optional[np.ndarray] = None
        # IR state
        self.x: Optional[np.ndarray] = None
        self.b_vec: Optional[np.ndarray] = None
        self.diag_a: Optional[np.ndarray] = None
        self.update_acc: Optional[np.ndarray] = None
        self.solve_partial: Optional[np.ndarray] = None
        self.last_residual_norm = float("inf")
        self.ir_iterations = 0

    # -- factorization ---------------------------------------------------------

    def fill_local(self) -> float:
        """Generate the local pieces of A in FP64 and store as FP32.

        Mirrors Algorithm 1 line 2 + the host-to-device copy.  One bulk
        :meth:`~repro.lcg.matrix.HplAiMatrix.block` call per local tile
        *row band* (full matrix width) replaces the per-tile loop; the
        owned columns are then gathered from the band.  Full-width bands
        are the canonical cache unit: the other ranks of this process
        row, every IR residual, and the verification pass all hit the
        same entries instead of regenerating them.
        """
        cfg = self.cfg
        b = self.b
        local = np.empty((cfg.local_rows, cfg.local_cols), dtype=np.float32)
        all_cols = cfg.p_cols == 1
        with self._hotpath_span("fill_local"):
            for lr in range(cfg.row_dim.blocks_per_proc):
                gr = cfg.row_dim.global_block(self.p_ir, lr)
                band = self.matrix.block(gr * b, (gr + 1) * b, 0, cfg.n)
                local[lr * b : (lr + 1) * b, :] = (
                    band if all_cols else band[:, self._gcols]
                )
        self.local = local
        return self._t_fill()

    def _diag_view(self, k: int) -> np.ndarray:
        p = self.plan(k)
        return self.local[
            p.diag_r : p.diag_r + self.b, p.diag_c : p.diag_c + self.b
        ]

    def getrf_diag(self, k: int) -> Tuple[np.ndarray, float]:
        """Factor the diagonal block in place; return a copy + time."""
        block = self._diag_view(k)
        self.shim.getrf(block)
        return block.copy(), self._t_getrf()

    def trsm_row_panel(self, k: int, diag: np.ndarray) -> float:
        """Solve the U row panel in place (TRSM_L_LOW)."""
        p = self.plan(k)
        if p.trail_cols == 0:
            return 0.0
        row = slice(p.diag_r, p.diag_r + self.b)
        panel = self.local[row, p.c1 :]
        self.local[row, p.c1 :] = self.shim.trsm("L", "LOW", diag, panel)
        return self._t_trsm(p.trail_cols)

    def _panel_round(self, values: np.ndarray) -> np.ndarray:
        """Round a panel to the configured storage precision."""
        from repro.precision.bfloat import cast_panel

        return cast_panel(values, self.cfg.panel_precision)

    def _gemm_sub(self, c: np.ndarray, a: np.ndarray, bt: np.ndarray) -> None:
        """``C -= A @ B^T{-stored}`` in the configured panel precision.

        FP16 panels go through the tensor-core-contract shim (FP16
        operands, FP32 accumulate); bf16 panels are already-rounded FP32
        values, so the FP32 matmul *is* the bf16-in/FP32-accumulate
        contract.
        """
        b_op = np.ascontiguousarray(bt.T)
        if self.cfg.panel_precision == "fp16":
            self.shim.gemm_update(c, a, b_op)
        else:
            c -= a @ b_op

    def trans_cast_u(self, k: int) -> Tuple[np.ndarray, float]:
        """Transpose + round the U panel to panel precision."""
        p = self.plan(k)
        row = slice(p.diag_r, p.diag_r + self.b)
        u16t = self._panel_round(
            np.ascontiguousarray(self.local[row, p.c1 :].T)
        )
        return u16t, self._t_cast(p.trail_cols, self.b)

    def trsm_col_panel(self, k: int, diag: np.ndarray) -> float:
        """Solve the L column panel in place (TRSM_R_UP)."""
        p = self.plan(k)
        if p.trail_rows == 0:
            return 0.0
        col = slice(p.diag_c, p.diag_c + self.b)
        panel = self.local[p.r1 :, col]
        self.local[p.r1 :, col] = self.shim.trsm("R", "UP", diag, panel)
        return self._t_trsm(p.trail_rows)

    def cast_l(self, k: int) -> Tuple[np.ndarray, float]:
        """Round the L panel to panel precision."""
        p = self.plan(k)
        col = slice(p.diag_c, p.diag_c + self.b)
        l16 = self._panel_round(self.local[p.r1 :, col])
        return l16, self._t_cast(p.trail_rows, self.b)

    def strip_col_update(self, k: int, l16, u16t) -> float:
        """Look-ahead: update (rows >= k+1) x (col block k+1) early."""
        p = self.plan(k)
        if p.trail_rows == 0:
            return 0.0
        c = self.local[p.r1 :, p.c1 : p.c1 + self.b]
        self._gemm_sub(c, l16, u16t[: self.b])
        return self._t_gemm(p.trail_rows, self.b)

    def strip_row_update(self, k: int, l16, u16t, owns_col: bool) -> float:
        """Look-ahead: update (row block k+1) x (cols >= k+2) early."""
        p = self.plan(k)
        off = self.b if owns_col else 0
        cols = p.trail_cols - off
        if cols <= 0:
            return 0.0
        c = self.local[p.r1 : p.r1 + self.b, p.c1 + off :]
        self._gemm_sub(c, l16[: self.b], u16t[off:])
        return self._t_gemm(self.b, cols)

    def gemm_trailing(self, k: int, l16, u16t, skip_row: bool, skip_col: bool) -> float:
        """Apply the trailing update on the local tile."""
        self._note_step(k)
        p = self.plan(k)
        roff = self.b if skip_row else 0
        coff = self.b if skip_col else 0
        m = p.trail_rows - roff
        n = p.trail_cols - coff
        if m <= 0 or n <= 0:
            return 0.0
        c = self.local[p.r1 + roff :, p.c1 + coff :]
        self._gemm_sub(c, l16[roff:], u16t[coff:])
        return self._t_gemm(m, n)

    def transfer_to_host(self) -> float:
        """Charge the factored-matrix download time."""
        return self._t_d2h()

    # -- iterative refinement --------------------------------------------------

    def ir_setup(self) -> float:
        """Generate b and diag(A); initialize x = b / diag(A)."""
        n = self.cfg.n
        self.b_vec = self.matrix.rhs()
        self.diag_a = self.matrix.diagonal()
        self.x = self.b_vec / self.diag_a
        self.update_acc = np.zeros(n)
        self.solve_partial = np.zeros(n)
        return self.cm.regen_time(2 * n)

    def ir_residual_partial(self) -> Tuple[np.ndarray, float]:
        """Algorithm 1 lines 34-42: partial ``-A x`` over this rank's tiles.

        x(k) is broadcast to the process column owning block-column k
        (line 37); each member then regenerates *its local rows* of that
        block-column in FP64 on the fly and multiplies — N^2/P entries of
        regeneration per rank.  (Our x is kept replicated, so the line-37
        broadcast is a no-op data-wise; the work distribution matches.)
        """
        partial = np.zeros(self.cfg.n)
        with self._hotpath_span("ir_residual"):
            self._tile_matvec(partial, self.x, sign=-1.0)
        if self.rank == 0:
            partial += self.b_vec
        return partial, self._t_ir_residual()

    def _tile_matvec(self, partial: np.ndarray, v: np.ndarray,
                     sign: float) -> None:
        """``partial += sign * (local tiles of A) @ v`` over owned tiles.

        Regenerates one full-width FP64 row band per local block row —
        the same cache keys the fill populated, so after the first touch
        each refinement iteration's "regeneration" is a cache lookup.
        The per-tile multiply order (ascending owned column) is kept so
        results are bitwise-identical to the historical per-tile loop.
        """
        cfg, b = self.cfg, self.b
        for lr in range(cfg.row_dim.blocks_per_proc):
            g = cfg.row_dim.global_block(self.p_ir, lr)
            band = self.matrix.block(g * b, (g + 1) * b, 0, cfg.n)
            seg = partial[g * b : (g + 1) * b]
            for lc in range(cfg.col_dim.blocks_per_proc):
                j = cfg.col_dim.global_block(self.p_ic, lc)
                tile = band[:, j * b : (j + 1) * b]
                if sign < 0:
                    self.shim.gemv_update(seg, tile, v[j * b : (j + 1) * b])
                else:
                    seg += self.shim.gemv(tile, v[j * b : (j + 1) * b])

    def ir_matvec_partial(self, v: np.ndarray) -> Tuple[np.ndarray, float]:
        """Partial ``A @ v`` over this rank's tiles (for GMRES).

        Same on-the-fly regeneration pattern as the residual; the
        Allreduce of the partials yields the full product.
        """
        partial = np.zeros(self.cfg.n)
        with self._hotpath_span("ir_matvec"):
            self._tile_matvec(partial, v, sign=1.0)
        return partial, self._t_ir_residual()

    def ir_converged(self, r: np.ndarray) -> bool:
        """Algorithm 1 line 44 convergence test (identical on all ranks)."""
        self.last_residual_norm = float(np.max(np.abs(r)))
        tol = hpl_ai_tolerance(
            self.cfg.n,
            float(np.max(np.abs(self.diag_a))),
            float(np.max(np.abs(self.x))),
            float(np.max(np.abs(self.b_vec))),
        )
        if self.last_residual_norm < tol:
            return True
        self._ir_iter += 1
        return False

    # distributed triangular solves ------------------------------------------

    def _local_block(self, g_row: int, g_col: int) -> np.ndarray:
        """Local FP32 storage of global block (g_row, g_col); caller must
        ensure this rank owns it."""
        lr = self.cfg.row_dim.local_block(g_row)
        lc = self.cfg.col_dim.local_block(g_col)
        b = self.b
        return self.local[lr * b : (lr + 1) * b, lc * b : (lc + 1) * b]

    def ir_reset_sweep(self, lower: bool) -> None:
        """Zero the sweep accumulators."""
        self.update_acc[:] = 0.0
        self.solve_partial[:] = 0.0

    def ir_row_contrib(self, j: int, r, lower: bool) -> Tuple[np.ndarray, float]:
        """This rank's contribution to segment j's right-hand side."""
        b = self.b
        seg = self.update_acc[j * b : (j + 1) * b].copy()
        if self.p_ic == j % self.cfg.p_cols:
            # The diagonal-column member folds in the sweep's RHS segment.
            seg += r[j * b : (j + 1) * b]
        return seg, 0.0

    def ir_diag_solve(self, j: int, y, lower: bool) -> Tuple[np.ndarray, float]:
        """TRSV of the j-th diagonal block (FP32 factors, FP64 rhs)."""
        block = self._local_block(j, j).astype(np.float64)
        if lower:
            w = self.shim.trsv_lower_unit(block, y)
        else:
            w = self.shim.trsv_upper(block, y)
        return w, self.cm.trsv_time(self.b)

    def ir_col_update(self, j: int, w, lower: bool) -> float:
        """Fold ``-T(i, j) @ w`` into the local accumulator for every
        local block-row i strictly below (lower) / above (upper) j.

        The participating local blocks are a contiguous run (global block
        index grows with local index), so the per-block GEMV loop
        collapses into one stacked ``(count*b, b) @ (b,)`` GEMV with a
        block-scatter of the result — bitwise-identical per-row dots.
        """
        b = self.b
        row_dim = self.cfg.row_dim
        total = row_dim.blocks_per_proc
        if lower:
            count = row_dim.local_blocks_at_or_after(self.p_ir, j + 1)
            lr0 = total - count
        else:
            count = total - row_dim.local_blocks_at_or_after(self.p_ir, j)
            lr0 = 0
        if count == 0:
            return self._charge_col_update(0)
        lc = self.cfg.col_dim.local_block(j)
        stacked = self.local[
            lr0 * b : (lr0 + count) * b, lc * b : (lc + 1) * b
        ].astype(np.float64)
        prod = stacked @ w
        acc = self.update_acc.reshape(-1, b)
        acc[self._grow_blocks[lr0 : lr0 + count]] -= prod.reshape(count, b)
        return self._charge_col_update(count)

    def ir_store_solution_segment(self, j: int, w) -> None:
        """Record segment j of the sweep solution."""
        b = self.b
        self.solve_partial[j * b : (j + 1) * b] = w

    def ir_solution_partial(self) -> Tuple[np.ndarray, float]:
        """This rank's stored solution segments (zeros elsewhere)."""
        return self.solve_partial.copy(), 0.0

    def ir_apply_correction(self, d: np.ndarray) -> float:
        """x += d; count the refinement iteration."""
        self.x += d
        self.ir_iterations += 1
        return self.cm.gemv_time(1, self.cfg.n)

    # -- results ---------------------------------------------------------------

    def result_payload(self) -> dict:
        """Exact result fields: x, residual, iteration count."""
        if self.x is None:
            raise ConfigurationError("ir_setup was never run")
        return {
            "exact": True,
            "x": self.x.copy(),
            "residual_norm": self.last_residual_norm,
            "ir_iterations": self.ir_iterations,
        }
