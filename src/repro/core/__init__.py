"""The HPL-AI benchmark core: distributed mixed-precision LU + IR.

This package contains the paper's Algorithm 1 — the GPU-centric
right-looking block LU factorization in FP16/FP32 with look-ahead, and
the FP64 iterative refinement with on-the-fly matrix regeneration — as
engine-agnostic rank programs, plus the exact (real-data) and phantom
(timing-only) executors they run against, and the top-level drivers.
"""

from repro.core.config import BenchmarkConfig
from repro.core.driver import RunResult, simulate_run, solve_hplai
from repro.core.hpl import hpl_solve_fp64, hpl_time_model
from repro.core.hpl_dist import solve_hpl_distributed
from repro.core.report import run_report, save_report

__all__ = [
    "BenchmarkConfig",
    "RunResult",
    "simulate_run",
    "solve_hplai",
    "hpl_solve_fp64",
    "hpl_time_model",
    "solve_hpl_distributed",
    "run_report",
    "save_report",
]
