"""The HPL (FP64, partial-pivoting) baseline.

The paper's headline comparison — HPL-AI at 1.411 EFLOPS vs Summit's
HPL R_max of 148.6 PFLOPS, a 9.5× ratio — needs a double-precision
baseline.  Like the paper (which cites the official TOP500 run rather
than re-implementing HPL at scale), we provide:

- :func:`hpl_solve_fp64` — an exact FP64 solver with partial pivoting
  built from this package's kernels, for correctness comparisons at
  small N;
- :func:`hpl_time_model` — an analytic throughput model of HPL on a
  machine preset, anchored to the published R_max efficiencies, for the
  at-scale ratio studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blas.getrf import apply_pivots, getrf_partial
from repro.blas.trsv import trsv_lower_unit, trsv_upper
from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.util import flops as fl


@dataclass(frozen=True)
class HplResult:
    """Outcome of an exact FP64 solve."""

    x: np.ndarray
    residual_norm: float
    scaled_residual: float
    flops: int


def hpl_solve_fp64(a: np.ndarray, b: np.ndarray) -> HplResult:
    """Solve ``A x = b`` in FP64 with partial pivoting (the HPL numerics).

    ``a`` is consumed (factored in place on a copy).
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ConfigurationError(f"A must be square, got {a.shape}")
    n = a.shape[0]
    if b.shape != (n,):
        raise ConfigurationError(f"b must have shape ({n},), got {b.shape}")
    a0 = np.array(a, dtype=np.float64)
    work = a0.copy()
    lu, piv = getrf_partial(work)
    rhs = apply_pivots(b.astype(np.float64).copy(), piv)
    y = trsv_lower_unit(lu, rhs)
    x = trsv_upper(lu, y)
    r = b - a0 @ x
    r_norm = float(np.max(np.abs(r)))
    a_norm = float(np.max(np.sum(np.abs(a0), axis=1)))
    x_norm = float(np.max(np.abs(x)))
    eps = float(np.finfo(np.float64).eps)
    scaled = r_norm / (eps * a_norm * x_norm * n) if x_norm > 0 else 0.0
    return HplResult(
        x=x,
        residual_norm=r_norm,
        scaled_residual=scaled,
        flops=fl.lu_flops(n) + 2 * n * n,
    )


def hpl_time_model(
    machine: MachineSpec,
    n: int,
    num_gcds: int,
    efficiency: float | None = None,
) -> float:
    """Modelled HPL wall-clock for problem size ``n`` on ``num_gcds``.

    ``efficiency`` is the fraction of per-GCD FP64 peak HPL sustains;
    when omitted it is derived from the machine's published R_max
    (e.g. Summit: 148.6 PF / 27648 GCDs / 7.8 TF = 0.689).
    """
    if num_gcds <= 0 or n <= 0:
        raise ConfigurationError("n and num_gcds must be positive")
    peak = machine.node.gpu.fp64_tflops * 1e12
    if efficiency is None:
        if machine.hpl_rmax_pflops <= 0:
            raise ConfigurationError(
                f"machine {machine.name} has no published HPL R_max; pass "
                "an explicit efficiency"
            )
        rmax_per_gcd = machine.hpl_rmax_pflops * 1e15 / machine.total_gcds
        efficiency = rmax_per_gcd / peak
    rate = num_gcds * peak * efficiency
    return fl.lu_flops(n) / rate


def hpl_gflops_per_gcd(machine: MachineSpec) -> float:
    """Published HPL throughput per GCD (GFLOP/s)."""
    if machine.hpl_rmax_pflops <= 0:
        raise ConfigurationError(
            f"machine {machine.name} has no published HPL R_max"
        )
    return machine.hpl_rmax_pflops * 1e15 / machine.total_gcds / 1e9
