"""Benchmark run configuration: the paper's input parameters plus the
tuning knobs of Sections IV-V."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.comm.vmpi import BCAST_ALGORITHMS
from repro.errors import ConfigurationError
from repro.grid.block_cyclic import BlockCyclicDim
from repro.grid.node_grid import NodeGrid
from repro.grid.process_grid import ProcessGrid
from repro.machine.spec import MachineSpec
from repro.util.validation import check_positive_int


@dataclass
class BenchmarkConfig:
    """Everything that defines one HPL-AI run.

    The four inputs of Algorithm 1 — ``N``, ``B``, ``P_r``, ``P_c`` — plus
    the machine and the communication/overlap tuning switches studied in
    the evaluation.

    Parameters
    ----------
    n:
        Global matrix dimension (must be a multiple of ``block * p_rows``
        and ``block * p_cols``; the paper sizes N as ``N_L × P_r``).
    block:
        Block size B.
    machine:
        Summit or Frontier preset (or a custom :class:`MachineSpec`).
    p_rows, p_cols:
        Process grid.
    q_rows, q_cols:
        Node-local grid; defaults to column-major placement
        (``Q_r = gcds_per_node, Q_c = 1``).
    bcast_algorithm:
        Panel broadcast strategy: bcast / ibcast / ring1 / ring1m / ring2m.
    lookahead:
        Overlap next-iteration panel work with the trailing GEMM.
    gpu_aware / port_binding:
        Findings 5 and 7 switches.
    seed:
        LCG seed for the matrix.
    ir_max_iters / ir_fixed_iters:
        Iterative-refinement bounds: exact runs stop at convergence (or
        ``ir_max_iters``); phantom runs charge exactly ``ir_fixed_iters``.
    """

    n: int
    block: int
    machine: MachineSpec
    p_rows: int
    p_cols: int
    q_rows: Optional[int] = None
    q_cols: Optional[int] = None
    bcast_algorithm: str = "bcast"
    #: algorithm for the diagonal-block broadcasts; None (default) uses
    #: the panel algorithm — the ring implementations replace all four
    #: synchronized broadcasts of the critical path (Section IV-B).
    diag_algorithm: Optional[str] = None
    lookahead: bool = True
    gpu_aware: bool = True
    port_binding: bool = True
    seed: int = 42
    ir_max_iters: int = 50
    ir_fixed_iters: int = 3
    ring_segments: Optional[int] = None
    #: post-factorization solver: "ir" (the paper's classical iterative
    #: refinement, Algorithm 1) or "gmres" (the HPL-AI reference's
    #: preconditioned GMRES).
    refinement_solver: str = "ir"
    #: all-reduce implementation for the refinement reductions: None =
    #: the engine's modelled library collective; "ring" (bandwidth-
    #: optimal) or "doubling" (latency-optimal) run explicitly over
    #: point-to-point messages.
    allreduce_algorithm: Optional[str] = None
    #: panel storage precision for the trailing-matrix GEMM: "fp16"
    #: (tensor-core HALF, the paper's choice) or "bf16" (bfloat16 —
    #: wider exponent range, fewer mantissa bits, more refinement).
    panel_precision: str = "fp16"
    #: broadcast progression model: "routed" — relays advance in the
    #: background while ranks compute (hardware/progress-thread MPI, what
    #: look-ahead needs); "inband" — relay forwarding happens inside rank
    #: programs (an MPI library with no asynchronous progression).
    #: "inband" requires lookahead=False.
    progression: str = "routed"

    grid: ProcessGrid = field(init=False)
    node_grid: NodeGrid = field(init=False)
    row_dim: BlockCyclicDim = field(init=False)
    col_dim: BlockCyclicDim = field(init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.block, "block")
        if self.bcast_algorithm not in BCAST_ALGORITHMS:
            raise ConfigurationError(
                f"unknown bcast algorithm {self.bcast_algorithm!r}"
            )
        if self.diag_algorithm is None:
            self.diag_algorithm = self.bcast_algorithm
        if self.diag_algorithm not in BCAST_ALGORITHMS:
            raise ConfigurationError(
                f"unknown diag algorithm {self.diag_algorithm!r}"
            )
        self.grid = ProcessGrid(self.p_rows, self.p_cols, order="col")
        q = self.machine.node.gcds_per_node
        if self.q_rows is not None or self.q_cols is not None:
            q_rows = self.q_rows if self.q_rows is not None else q // self.q_cols
            q_cols = self.q_cols if self.q_cols is not None else q // q_rows
            if q_rows * q_cols != q:
                raise ConfigurationError(
                    f"node-local grid {q_rows}x{q_cols} does not match "
                    f"{q} GCDs per node"
                )
        else:
            q_rows, q_cols = self._default_node_grid(q)
        self.q_rows, self.q_cols = q_rows, q_cols
        self.node_grid = NodeGrid(self.grid, q_rows, q_cols)
        self.row_dim = BlockCyclicDim(self.n, self.block, self.p_rows)
        self.col_dim = BlockCyclicDim(self.n, self.block, self.p_cols)
        if self.ir_max_iters < 1 or self.ir_fixed_iters < 1:
            raise ConfigurationError("IR iteration bounds must be >= 1")
        if self.refinement_solver not in ("ir", "gmres"):
            raise ConfigurationError(
                f"refinement_solver must be 'ir' or 'gmres', got "
                f"{self.refinement_solver!r}"
            )
        if self.allreduce_algorithm not in (None, "ring", "doubling"):
            raise ConfigurationError(
                f"allreduce_algorithm must be None, 'ring' or 'doubling', "
                f"got {self.allreduce_algorithm!r}"
            )
        if self.panel_precision not in ("fp16", "bf16"):
            raise ConfigurationError(
                f"panel_precision must be 'fp16' or 'bf16', got "
                f"{self.panel_precision!r}"
            )
        if self.progression not in ("routed", "inband"):
            raise ConfigurationError(
                f"progression must be 'routed' or 'inband', got "
                f"{self.progression!r}"
            )
        if self.progression == "inband" and self.lookahead:
            raise ConfigurationError(
                "in-band progression cannot overlap broadcasts with the "
                "trailing GEMM; use lookahead=False with progression='inband'"
            )

    def _default_node_grid(self, q: int):
        """Pick a column-major-leaning Q_r×Q_c that tiles the grid.

        Prefers the tallest valid tile (the paper's default placement is
        column-major, i.e. Q_r = Q, Q_c = 1).  Grids smaller than a node
        fall back to one rank per node — conservative for communication.
        """
        for q_rows in range(min(q, self.p_rows), 0, -1):
            if q % q_rows != 0:
                continue
            q_cols = q // q_rows
            if self.p_rows % q_rows == 0 and self.p_cols % q_cols == 0:
                return q_rows, q_cols
        return 1, 1

    # -- derived quantities ---------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return self.grid.size

    @property
    def num_blocks(self) -> int:
        """Factorization steps ``n_b = N / B``."""
        return self.n // self.block

    @property
    def local_rows(self) -> int:
        """``N_Lr``, local matrix rows per rank."""
        return self.row_dim.local_n

    @property
    def local_cols(self) -> int:
        """``N_Lc``, local matrix columns per rank."""
        return self.col_dim.local_n

    @property
    def local_fp32_bytes(self) -> int:
        return self.local_rows * self.local_cols * 4

    def check_gpu_memory(self) -> None:
        """Raise if the FP32 local matrix plus panel buffers overflow a GCD."""
        budget = self.machine.node.gpu.memory_gib * 2**30
        panels = 2 * (self.local_rows + self.local_cols) * self.block * 2
        needed = self.local_fp32_bytes + panels + self.block * self.block * 4
        if needed > budget:
            raise ConfigurationError(
                f"local problem needs {needed / 2**30:.1f} GiB but the "
                f"{self.machine.node.gpu.model} GCD has "
                f"{budget / 2**30:.0f} GiB"
            )

    def describe(self) -> dict:
        """Key configuration facts as a plain dict."""
        return {
            "machine": self.machine.name,
            "N": self.n,
            "B": self.block,
            "grid": f"{self.p_rows}x{self.p_cols}",
            "node_grid": f"{self.q_rows}x{self.q_cols}",
            "N_L": f"{self.local_rows}x{self.local_cols}",
            "bcast": self.bcast_algorithm,
            "allreduce": self.allreduce_algorithm,
            "progression": self.progression,
            "lookahead": self.lookahead,
            "gpu_aware": self.gpu_aware,
            "port_binding": self.port_binding,
            "GCDs": self.num_ranks,
            "nodes": self.node_grid.num_nodes,
        }
