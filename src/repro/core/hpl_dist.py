"""Distributed FP64 HPL: right-looking LU with partial pivoting.

The paper's headline compares HPL-AI against HPL; this module implements
the double-precision baseline *as a distributed algorithm* on the same
virtual machine, so the mixed-precision speedup can be measured inside
the event engine rather than only anchored to published numbers.

Differences from the HPL-AI driver (:mod:`repro.core.hplai`):

- everything is FP64 (no casts, no FP16 panels, no refinement);
- the panel factorization pivots: for each column within the panel, the
  process column owning it runs a pivot search (an Allreduce of
  (|value|, global row) pairs), exchanges pivot rows, and broadcasts the
  pivot row segment for the rank-1 update;
- row interchanges are applied to the trailing matrix LASWP-style before
  the update, as point-to-point row exchanges between owner ranks;
- the final solve applies the accumulated interchanges to b and then
  runs the same distributed triangular sweeps as refinement, once.

The implementation favours clarity over panel-level optimizations (no
look-ahead; HPL's own look-ahead story is equivalent to HPL-AI's) and is
intended for exact-mode validation at small N plus per-operation timing.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Tuple

import numpy as np

from repro.comm.vmpi import RankComm
from repro.core.config import BenchmarkConfig
from repro.core.layout import make_step_plan
from repro.errors import SingularMatrixError
from repro.lcg.matrix import HplAiMatrix
from repro.obs import context as obs_context
from repro.simulate.events import Barrier, Compute, Now
from repro.util import flops as fl

_TAG_BASE = 1 << 24


def _tag(k: int, phase: int, j: int = 0) -> int:
    return _TAG_BASE + (k * 8 + phase) * 4096 + j


TAG_PIVROW = 0
TAG_SWAP = 1
TAG_U_PANEL = 2
TAG_L_PANEL = 3
TAG_SWAP_TRAIL = 4
#: batched LASWP exchange — one message per (panel, peer pair), so the
#: phase needs no per-column ``j`` offset.  (The old per-column scheme
#: added ``span_idx`` to ``_tag(k, 7, j)``, which aliased column j+1's
#: span-0 tag between the same rank pair.)
TAG_LASWP = 7

_NULL_CTX = contextlib.nullcontext()


class HplExecutor:
    """Per-rank FP64 storage and kernels for distributed HPL."""

    def __init__(self, cfg: BenchmarkConfig, p_ir: int, p_ic: int, rank: int,
                 matrix=None):
        self.cfg = cfg
        self.p_ir = p_ir
        self.p_ic = p_ic
        self.rank = rank
        self.b = cfg.block
        self.km = cfg.machine.gpu_kernels
        self.cm = cfg.machine.cpu_kernels
        #: any object with ``block(r0, r1, c0, c1)`` and ``rhs()``; HPL
        #: proper runs general matrices, so tests inject non-dominant
        #: ones to exercise the pivoting.
        self.matrix = matrix if matrix is not None else HplAiMatrix(
            cfg.n, cfg.seed
        )
        #: global element index per local row/column, strictly increasing
        #: — the bulk gather/scatter maps for the vectorized hot paths
        self._grows = cfg.row_dim.element_indices(p_ir)
        self._gcols = cfg.col_dim.element_indices(p_ic)
        self.local: Optional[np.ndarray] = None
        #: global pivot rows, ipiv[g] = row swapped with row g at step g
        self.ipiv: List[int] = []
        self._obs_on = obs_context.current().enabled

    # -- layout helpers ---------------------------------------------------

    def plan(self, k: int):
        """Layout facts for step k."""
        return make_step_plan(self.cfg, self.p_ir, self.p_ic, k)

    def owns_row(self, global_row: int) -> bool:
        """Whether this rank's process row owns a global row index."""
        return self.cfg.row_dim.owner_of_index(global_row) == self.p_ir

    def local_row(self, global_row: int) -> int:
        """Local element index of a global row this rank owns."""
        return self.cfg.row_dim.local_index(global_row)

    def owns_col(self, global_col: int) -> bool:
        """Whether this rank's process column owns a global column."""
        return self.cfg.col_dim.owner_of_index(global_col) == self.p_ic

    def local_col(self, global_col: int) -> int:
        """Local element index of a global column this rank owns."""
        return self.cfg.col_dim.local_index(global_col)

    # -- data ------------------------------------------------------------------

    def fill_local(self) -> float:
        """Regenerate this rank's FP64 tiles; returns the time.

        One full-width ``block()`` call per local tile row band, with the
        owned columns gathered out — the band is the canonical tile-cache
        unit shared with the other ranks of this process row and the
        post-solve verification pass.
        """
        cfg, b = self.cfg, self.b
        local = np.empty((cfg.local_rows, cfg.local_cols))
        all_cols = cfg.p_cols == 1
        span = (
            obs_context.current().tracer.span(
                "fill_local", "hotpath", self.rank, clock="wall")
            if self._obs_on else _NULL_CTX
        )
        with span:
            for lr in range(cfg.row_dim.blocks_per_proc):
                gr = cfg.row_dim.global_block(self.p_ir, lr)
                band = self.matrix.block(gr * b, (gr + 1) * b, 0, cfg.n)
                local[lr * b:(lr + 1) * b, :] = (
                    band if all_cols else band[:, self._gcols]
                )
        self.local = local
        # FP64 generation + upload: twice the FP32 volume.
        n_elems = cfg.local_rows * cfg.local_cols
        return self.cm.regen_time(n_elems) + self.km.h2d_time(n_elems * 8)

    # -- panel factorization pieces ----------------------------------------------

    def local_pivot_candidate(self, col: int, row_start: int) -> Tuple[float, int]:
        """(|value|, global row) of this rank's best pivot in ``col`` at
        or below ``row_start`` (rank must own the column).

        The candidate rows form a contiguous local suffix (global index
        grows with local index), so this is a single masked argmax; ties
        resolve to the first (lowest local = lowest global) occurrence,
        exactly as the historical per-block scan did.
        """
        lc = self.local_col(col)
        lo = int(np.searchsorted(self._grows, row_start))
        if lo >= self._grows.size:
            return -1.0, -1
        col_abs = np.abs(self.local[lo:, lc])
        idx = int(np.argmax(col_abs))
        return float(col_abs[idx]), int(self._grows[lo + idx])

    def get_row_segment(self, global_row: int, col_lo: int, col_hi: int) -> np.ndarray:
        """This rank's local slice of row ``global_row`` between the
        *local column offsets* [col_lo, col_hi)."""
        lr = self.local_row(global_row)
        return self.local[lr, col_lo:col_hi].copy()

    def set_row_segment(self, global_row: int, col_lo: int, col_hi: int,
                        values: np.ndarray) -> None:
        """Overwrite this rank's local slice of a global row."""
        lr = self.local_row(global_row)
        self.local[lr, col_lo:col_hi] = values

    def panel_col_range(self, k: int) -> Tuple[int, int]:
        """Local column offsets [lo, hi) of panel block-column k (owner)."""
        lc = (k // self.cfg.p_cols) * self.b
        return lc, lc + self.b

    def trailing_col_range(self, k: int) -> Tuple[int, int]:
        """Local column offsets of the trailing region at step k."""
        plan = self.plan(k)
        return plan.c1, self.cfg.local_cols

    def scale_and_update_panel(self, col: int, row_start: int,
                               pivot_row_seg: np.ndarray, pivot_val: float,
                               panel_lo: int, panel_hi: int) -> float:
        """Rank-1 update of this rank's panel rows below ``row_start``.

        ``pivot_row_seg`` holds the pivot row's panel segment (columns
        [panel_lo, panel_hi) locally); ``col`` is the global column being
        eliminated.
        """
        if pivot_val == 0.0 or not np.isfinite(pivot_val):
            raise SingularMatrixError(
                f"zero/non-finite pivot in column {col}"
            )
        lc = self.local_col(col)
        j_in_panel = lc - panel_lo
        # The MAXLOC exchange carries |pivot|; the *signed* pivot is the
        # broadcast pivot row's own entry.
        signed_pivot = float(pivot_row_seg[j_in_panel])
        if signed_pivot == 0.0:
            raise SingularMatrixError(f"zero pivot in column {col}")
        # The rows at/below row_start are a contiguous local suffix, so
        # the whole update is one scale + one outer product (elementwise
        # identical to the old per-block loop).
        r0 = int(np.searchsorted(self._grows, row_start))
        count = self.cfg.local_rows - r0
        if count > 0:
            block = self.local[r0:, panel_lo:panel_hi]
            multipliers = block[:, j_in_panel] / signed_pivot
            block[:, j_in_panel] = multipliers
            if j_in_panel + 1 < pivot_row_seg.size:
                block[:, j_in_panel + 1:] -= np.outer(
                    multipliers, pivot_row_seg[j_in_panel + 1:]
                )
        # A slice of the rank-1 update's flops.
        return fl.gemm_flops(count, panel_hi - panel_lo, 1) / max(
            self.km.fp64_gemm_rate(max(count, 1), panel_hi - panel_lo, 32), 1.0
        )

    # -- post-panel phases ---------------------------------------------------------

    def extract_l_panel(self, k: int) -> np.ndarray:
        """L panel chunk (trailing local rows x B), FP64."""
        plan = self.plan(k)
        lo, hi = self.panel_col_range(k)
        return self.local[plan.r1:, lo:hi].copy()

    def trsm_row_panel(self, k: int, diag: np.ndarray) -> float:
        """U panel: solve L11 X = A12 on the pivot row."""
        import scipy.linalg as sla

        plan = self.plan(k)
        if plan.trail_cols == 0:
            return 0.0
        row = slice(plan.diag_r, plan.diag_r + self.b)
        lower = np.tril(diag, -1) + np.eye(self.b)
        self.local[row, plan.c1:] = sla.solve_triangular(
            lower, self.local[row, plan.c1:], lower=True, unit_diagonal=True
        )
        return fl.trsm_flops(self.b, plan.trail_cols) / max(
            self.km.fp64_gemm_rate(self.b, plan.trail_cols, self.b), 1.0
        )

    def extract_u_panel(self, k: int) -> np.ndarray:
        """Copy of the solved U row panel (trailing columns)."""
        plan = self.plan(k)
        row = slice(plan.diag_r, plan.diag_r + self.b)
        return self.local[row, plan.c1:].copy()

    def extract_diag(self, k: int) -> np.ndarray:
        """Copy of the factored diagonal block (packed L\\U)."""
        plan = self.plan(k)
        return self.local[
            plan.diag_r: plan.diag_r + self.b,
            plan.diag_c: plan.diag_c + self.b,
        ].copy()

    def gemm_trailing(self, k: int, l_panel: np.ndarray, u_panel: np.ndarray) -> float:
        """FP64 trailing update; returns the modelled time."""
        plan = self.plan(k)
        m, n = plan.trail_rows, plan.trail_cols
        if m == 0 or n == 0:
            return 0.0
        self.local[plan.r1:, plan.c1:] -= l_panel @ u_panel
        return self.km.fp64_gemm_time(m, n, self.b)

    # -- solve -------------------------------------------------------------------

    def _local_block(self, g_row: int, g_col: int) -> np.ndarray:
        b = self.b
        lr = self.cfg.row_dim.local_block(g_row)
        lc = self.cfg.col_dim.local_block(g_col)
        return self.local[lr * b:(lr + 1) * b, lc * b:(lc + 1) * b]


def _pivot_reduce(candidates):
    """Combine (|value|, row) candidates with MPI_MAXLOC semantics.

    Largest value wins; equal values resolve to the lowest row index.
    The ``(-1.0, -1)`` "no candidate" sentinel never wins against a real
    candidate: a previous version compared ``0 <= row < best[1]``, which
    is false while ``best[1] == -1``, so a valid candidate *tying* the
    sentinel-free best was dropped depending on arrival order.
    """
    best = (-1.0, -1)
    for val, row in candidates:
        if row < 0:
            continue  # sentinel: rank had no rows in range
        if val > best[0] or (val == best[0] and (best[1] < 0 or row < best[1])):
            best = (val, row)
    return best


def _laswp_permutation(ipiv, col_lo: int, col_hi: int) -> dict:
    """Net row permutation of one panel's swap sequence.

    Applying the swaps ``(col, ipiv[col])`` for ``col`` in
    ``[col_lo, col_hi)`` in order leaves row ``dest`` holding the
    original contents of row ``sigma[dest]``.  Identity entries are
    dropped, so an empty dict means the panel needs no interchanges.
    """
    cur: dict = {}
    for col in range(col_lo, col_hi):
        p = ipiv[col]
        if p == col:
            continue
        cur[col], cur[p] = cur.get(p, p), cur.get(col, col)
    return {dest: src for dest, src in cur.items() if dest != src}


def _gather_row(ex: HplExecutor, global_row: int, spans) -> np.ndarray:
    """One local row's span columns, concatenated into a flat buffer."""
    lr = ex.local_row(global_row)
    if len(spans) == 1:
        lo, hi = spans[0]
        return ex.local[lr, lo:hi].copy()
    return np.concatenate([ex.local[lr, lo:hi] for lo, hi in spans])


def _scatter_row(ex: HplExecutor, global_row: int, spans,
                 values: np.ndarray) -> None:
    """Inverse of :func:`_gather_row`: write the flat buffer back."""
    lr = ex.local_row(global_row)
    off = 0
    for lo, hi in spans:
        ex.local[lr, lo:hi] = values[off: off + hi - lo]
        off += hi - lo


def _apply_laswp_batched(cfg, ex: HplExecutor, comm, grid, k: int,
                         spans, sigma: dict):
    """Apply one panel's net row permutation with batched exchanges.

    Both sides of every exchange derive the same (dest, src) list from
    ``sigma`` in ascending-dest order, so a single stacked array per
    (peer, direction) replaces the old per-column send/recv pairs.  All
    source rows are snapshotted before any write (copy-before-overwrite),
    which is what makes applying the *net* permutation equivalent to the
    sequential swap-by-swap data movement.
    """
    row_dim = cfg.row_dim
    my = ex.p_ir
    incoming: dict = {}   # peer p_ir -> [(dest, src)] ascending dest
    outgoing: dict = {}
    local_moves = []
    src_rows_needed = set()
    for dest in sorted(sigma):
        src = sigma[dest]
        dest_owner = row_dim.owner_of_index(dest)
        src_owner = row_dim.owner_of_index(src)
        if dest_owner == my and src_owner == my:
            local_moves.append((dest, src))
            src_rows_needed.add(src)
        elif dest_owner == my:
            incoming.setdefault(src_owner, []).append((dest, src))
        elif src_owner == my:
            outgoing.setdefault(dest_owner, []).append((dest, src))
            src_rows_needed.add(src)
    if not (incoming or outgoing or local_moves):
        return
    old = {src: _gather_row(ex, src, spans) for src in src_rows_needed}
    span_ctx = (
        obs_context.current().tracer.span(
            "laswp_batch", "hotpath", ex.rank, clock="wall", panel=k)
        if ex._obs_on else _NULL_CTX
    )
    with span_ctx:
        for peer in sorted(set(incoming) | set(outgoing)):
            out_rows = outgoing.get(peer)
            in_rows = incoming.get(peer)
            peer_rank = grid.rank_of(peer, ex.p_ic)
            payload = (
                np.stack([old[src] for _dest, src in out_rows])
                if out_rows else None
            )
            theirs = None
            # Lower process row sends first — a deterministic order both
            # sides agree on (the engine's sends are buffered, but the
            # discipline keeps the protocol rendezvous-safe).
            if my < peer:
                if payload is not None:
                    yield from comm.send(peer_rank, payload, _tag(k, TAG_LASWP))
                if in_rows:
                    theirs = yield from comm.recv(peer_rank, _tag(k, TAG_LASWP))
            else:
                if in_rows:
                    theirs = yield from comm.recv(peer_rank, _tag(k, TAG_LASWP))
                if payload is not None:
                    yield from comm.send(peer_rank, payload, _tag(k, TAG_LASWP))
            if in_rows:
                for (dest, _src), row_vals in zip(in_rows, theirs):
                    _scatter_row(ex, dest, spans, row_vals)
        for dest, src in local_moves:
            _scatter_row(ex, dest, spans, old[src])


def _column_strip(m, cfg: BenchmarkConfig, jj: int) -> np.ndarray:
    """Full-height column block ``jj`` of ``m`` for the residual check.

    Cache-backed LCG matrices are assembled from the full-width row bands
    the distributed fill already cached, so no entry is regenerated; the
    values are identical either way (each entry is a pure function of its
    global position).
    """
    b = cfg.block
    if not getattr(m, "use_cache", False):
        return m.block(0, cfg.n, jj * b, (jj + 1) * b)
    return np.concatenate([
        m.block(g * b, (g + 1) * b, 0, cfg.n)[:, jj * b:(jj + 1) * b]
        for g in range(cfg.num_blocks)
    ])


def hpl_rank_program(cfg: BenchmarkConfig, ex: HplExecutor, rank: int):
    """Distributed FP64 HPL: factorization + pivoted solve.

    Returns ``{"x", "residual_norm", "t_total", ...}`` (exact data).
    """
    comm = RankComm(
        rank, cfg.machine.mpi, bcast_algorithm=cfg.bcast_algorithm,
        ring_segments=cfg.ring_segments,
        node_of=cfg.node_grid.node_of_rank,
    )
    grid = cfg.grid
    everyone = tuple(range(cfg.num_ranks))
    b = cfg.block
    nb = cfg.num_blocks

    secs = ex.fill_local()
    yield Compute("fill", secs)
    yield Barrier(everyone)
    t_start = yield Now()

    ipiv: List[int] = []
    for k in range(nb):
        plan = ex.plan(k)
        kc = plan.owner_col
        col_members = grid.col_members(kc)
        in_panel_col = ex.p_ic == kc
        panel_lo = panel_hi = None
        if in_panel_col:
            panel_lo, panel_hi = ex.panel_col_range(k)

        # ---- panel factorization with partial pivoting -------------------
        for j in range(b):
            col = k * b + j
            if col >= cfg.n:
                break
            if in_panel_col:
                cand = ex.local_pivot_candidate(col, col)
                # Pivot selection (MPI_MAXLOC equivalent): every column
                # member sends its best candidate to the diagonal-row
                # owner, which picks the winner and rebroadcasts it.
                diag_owner = grid.rank_of(
                    cfg.row_dim.owner_of_index(col), kc
                )
                if rank == diag_owner:
                    cands = [cand]
                    for src in col_members:
                        if src != rank:
                            cands.append(
                                (yield from comm.recv(src, _tag(k, TAG_PIVROW, j)))
                            )
                    pivot_val, pivot_row = _pivot_reduce(cands)
                    for dst in col_members:
                        if dst != rank:
                            yield from comm.send(
                                dst, (pivot_val, pivot_row),
                                _tag(k, TAG_SWAP, j),
                            )
                else:
                    yield from comm.send(
                        diag_owner, cand, _tag(k, TAG_PIVROW, j)
                    )
                    pivot_val, pivot_row = yield from comm.recv(
                        diag_owner, _tag(k, TAG_SWAP, j)
                    )
                if pivot_row < 0 or pivot_val == 0.0:
                    raise SingularMatrixError(f"singular at column {col}")
                ipiv.append(pivot_row)

                # Swap rows `col` and `pivot_row` within the panel.
                if pivot_row != col:
                    owner_a = cfg.row_dim.owner_of_index(col)
                    owner_b = cfg.row_dim.owner_of_index(pivot_row)
                    if owner_a == owner_b:
                        if ex.p_ir == owner_a:
                            ra = ex.get_row_segment(col, panel_lo, panel_hi)
                            rb = ex.get_row_segment(pivot_row, panel_lo, panel_hi)
                            ex.set_row_segment(col, panel_lo, panel_hi, rb)
                            ex.set_row_segment(pivot_row, panel_lo, panel_hi, ra)
                    elif ex.p_ir == owner_a:
                        mine = ex.get_row_segment(col, panel_lo, panel_hi)
                        other_rank = grid.rank_of(owner_b, kc)
                        yield from comm.send(
                            other_rank, mine, _tag(k, TAG_SWAP_TRAIL, j)
                        )
                        theirs = yield from comm.recv(
                            other_rank, _tag(k, TAG_SWAP_TRAIL, j)
                        )
                        ex.set_row_segment(col, panel_lo, panel_hi, theirs)
                    elif ex.p_ir == owner_b:
                        mine = ex.get_row_segment(pivot_row, panel_lo, panel_hi)
                        other_rank = grid.rank_of(owner_a, kc)
                        theirs = yield from comm.recv(
                            other_rank, _tag(k, TAG_SWAP_TRAIL, j)
                        )
                        yield from comm.send(
                            other_rank, mine, _tag(k, TAG_SWAP_TRAIL, j)
                        )
                        ex.set_row_segment(pivot_row, panel_lo, panel_hi, theirs)

                # Broadcast the pivot row's panel segment for the update.
                prow_owner = grid.rank_of(cfg.row_dim.owner_of_index(col), kc)
                if rank == prow_owner:
                    seg = ex.get_row_segment(col, panel_lo, panel_hi)
                    yield from comm.bcast_start(
                        seg, prow_owner, col_members, _tag(k, TAG_PIVROW + 5, j),
                        algorithm="bcast",
                    )
                    pivot_seg = seg
                else:
                    pivot_seg = yield from comm.bcast_finish(
                        prow_owner, _tag(k, TAG_PIVROW + 5, j)
                    )
                secs = ex.scale_and_update_panel(
                    col, col + 1, pivot_seg, pivot_val, panel_lo, panel_hi
                )
                yield Compute("getrf", secs)
        # Broadcast the pivot list for this panel along the rows.
        row_members_all = everyone  # every rank needs ipiv for the solve
        panel_piv = ipiv[k * b:(k + 1) * b] if in_panel_col else None
        src_rank = grid.rank_of(ex.p_ir, kc)
        if cfg.p_cols > 1:
            members = grid.row_members(ex.p_ir)
            if in_panel_col:
                yield from comm.bcast_start(
                    tuple(panel_piv), src_rank, members, _tag(k, 6),
                    algorithm="bcast",
                )
                piv_list = list(panel_piv)
            else:
                piv_list = list((yield from comm.bcast_finish(src_rank, _tag(k, 6))))
            if not in_panel_col:
                ipiv.extend(piv_list)
        del row_members_all

        # ---- apply interchanges LAPACK-style (LASWP), batched --------------
        # Full-width row swaps — including previously factored L columns —
        # so that the stored factors are exactly those of P A and the
        # solve is two clean triangular sweeps on the permuted b.  The
        # panel's own columns were already swapped during factorization
        # on the panel owners, so they are excluded there.  The panel's
        # column-by-column swap sequence composes into one net row
        # permutation that every rank derives from the shared ipiv, so
        # all interchanges collapse into at most one stacked send/recv
        # pair per peer process row (tag phase TAG_LASWP, no per-column
        # or per-span tag arithmetic).
        if in_panel_col:
            spans = [(0, panel_lo), (panel_hi, cfg.local_cols)]
        else:
            spans = [(0, cfg.local_cols)]
        spans = [(lo, hi) for lo, hi in spans if hi > lo]
        sigma = _laswp_permutation(ipiv, k * b, min((k + 1) * b, cfg.n))
        if spans and sigma:
            yield from _apply_laswp_batched(cfg, ex, comm, grid, k, spans, sigma)

        # ---- diagonal + U panel + trailing update -----------------------------
        plan = ex.plan(k)
        diag_owner_rank = grid.rank_of(plan.owner_row, plan.owner_col)
        diag = None
        if plan.is_owner:
            diag = ex.extract_diag(k)
        if plan.in_pivot_row and cfg.p_cols > 1:
            members = grid.row_members(plan.owner_row)
            if plan.is_owner:
                yield from comm.bcast_start(
                    diag, diag_owner_rank, members, _tag(k, 2), algorithm="bcast"
                )
            else:
                diag = yield from comm.bcast_finish(diag_owner_rank, _tag(k, 2))
        u_panel = None
        if plan.in_pivot_row:
            secs = ex.trsm_row_panel(k, diag)
            yield Compute("trsm", secs)
            u_panel = ex.extract_u_panel(k)
        l_panel = None
        if plan.in_pivot_col:
            l_panel = ex.extract_l_panel(k)
        # Broadcast panels.
        if plan.trail_cols > 0 and cfg.p_rows > 1:
            root = grid.rank_of(plan.owner_row, ex.p_ic)
            if plan.in_pivot_row:
                yield from comm.bcast_start(
                    u_panel, root, grid.col_members(ex.p_ic),
                    _tag(k, TAG_U_PANEL),
                )
            else:
                u_panel = yield from comm.bcast_finish(root, _tag(k, TAG_U_PANEL))
        if plan.trail_rows > 0 and cfg.p_cols > 1:
            root = grid.rank_of(ex.p_ir, plan.owner_col)
            if plan.in_pivot_col:
                yield from comm.bcast_start(
                    l_panel, root, grid.row_members(ex.p_ir),
                    _tag(k, TAG_L_PANEL),
                )
            else:
                l_panel = yield from comm.bcast_finish(root, _tag(k, TAG_L_PANEL))
        secs = ex.gemm_trailing(k, l_panel, u_panel)
        yield Compute("gemm", secs)

    ex.ipiv = ipiv
    yield Barrier(everyone)
    t_fact = yield Now()

    # ---- solve: permute b, then two distributed sweeps -------------------------
    m = ex.matrix
    b_vec = m.rhs().copy()
    for g, p in enumerate(ipiv):
        if p != g:
            b_vec[[g, p]] = b_vec[[p, g]]
    # Reuse the refinement sweep machinery with an FP64 "executor" view.
    from repro.core.refine import triangular_sweep

    class _SolveView:
        """Adapter exposing the executor surface triangular_sweep needs."""

        p_ir, p_ic = ex.p_ir, ex.p_ic

        def __init__(self):
            self.update_acc = np.zeros(cfg.n)
            self.solve_partial = np.zeros(cfg.n)

        def ir_reset_sweep(self, lower):
            self.update_acc[:] = 0.0
            self.solve_partial[:] = 0.0

        def ir_row_contrib(self, jj, rhs, lower):
            seg = self.update_acc[jj * b:(jj + 1) * b].copy()
            if ex.p_ic == jj % cfg.p_cols:
                seg += rhs[jj * b:(jj + 1) * b]
            return seg, 0.0

        def ir_diag_solve(self, jj, y, lower):
            import scipy.linalg as sla

            block = ex._local_block(jj, jj)
            if lower:
                w = sla.solve_triangular(block, y, lower=True,
                                         unit_diagonal=True)
            else:
                w = sla.solve_triangular(block, y, lower=False)
            return w, ex.cm.trsv_time(b)

        def ir_store_solution_segment(self, jj, w):
            self.solve_partial[jj * b:(jj + 1) * b] = w

        def ir_col_update(self, jj, w, lower):
            # The participating local block rows are contiguous, so the
            # per-block GEMVs collapse into one stacked GEMV + scatter
            # (bitwise-identical per-row dot products).
            total = cfg.row_dim.blocks_per_proc
            if lower:
                count = cfg.row_dim.local_blocks_at_or_after(ex.p_ir, jj + 1)
                lr0 = total - count
            else:
                count = total - cfg.row_dim.local_blocks_at_or_after(
                    ex.p_ir, jj
                )
                lr0 = 0
            if count == 0:
                return 0.0
            lc = cfg.col_dim.local_block(jj)
            stacked = ex.local[lr0 * b:(lr0 + count) * b, lc * b:(lc + 1) * b]
            prod = stacked @ w
            acc = self.update_acc.reshape(-1, b)
            g0 = lr0 * cfg.p_rows + ex.p_ir
            acc[g0: g0 + count * cfg.p_rows: cfg.p_rows] -= prod.reshape(
                count, b
            )
            return ex.cm.gemv_time(count * b, b)

        def ir_solution_partial(self):
            return self.solve_partial.copy(), 0.0

        def ir_sweep_deferred(self):
            return 0.0

    view = _SolveView()
    yield from triangular_sweep(cfg, view, comm, b_vec, lower=True, iteration=0)
    wp, _ = view.ir_solution_partial()
    w = yield from comm.allreduce(wp, everyone)
    yield from triangular_sweep(cfg, view, comm, w, lower=False, iteration=0)
    xp, _ = view.ir_solution_partial()
    x = yield from comm.allreduce(xp, everyone)
    yield Barrier(everyone)
    t_end = yield Now()

    # residual check: the first process row regenerates its process
    # column's blocks (full height) so each global column contributes
    # exactly once to the Allreduce.  For cache-backed matrices the
    # column strip is assembled from the full-width row bands the fills
    # already cached (every global row block was banded by its owning
    # process row), so this pass regenerates nothing.
    partial = np.zeros(cfg.n)
    if ex.p_ir == 0:
        for lc in range(cfg.col_dim.blocks_per_proc):
            jj = cfg.col_dim.global_block(ex.p_ic, lc)
            tile = _column_strip(m, cfg, jj)
            partial += tile @ x[jj * b:(jj + 1) * b]
    ax = yield from comm.allreduce(partial, everyone)
    residual = float(np.max(np.abs(m.rhs() - ax)))

    return {
        "x": x,
        "residual_norm": residual,
        "t_factorization": t_fact - t_start,
        "t_total": t_end - t_start,
        "ipiv": list(ipiv),
    }


def solve_hpl_distributed(cfg: BenchmarkConfig, matrix=None):
    """Run the distributed FP64 HPL on the event engine; returns a dict
    with the solution, residual and simulated times (from rank 0).

    ``matrix`` optionally overrides the input (any object with
    ``block(r0, r1, c0, c1)`` and ``rhs()``) so general, pivot-requiring
    systems can be solved.
    """
    from repro.machine.topology import CommCosts
    from repro.simulate.engine import Engine

    costs = CommCosts(
        cfg.machine, port_binding=cfg.port_binding, gpu_aware=cfg.gpu_aware
    )
    engine = Engine(
        cfg.num_ranks, costs, node_of_rank=cfg.node_grid.node_of_rank,
        mpi=cfg.machine.mpi,
    )

    def factory(rank: int):
        p_ir, p_ic = cfg.grid.coords_of(rank)
        ex = HplExecutor(cfg, p_ir, p_ic, rank, matrix=matrix)
        return hpl_rank_program(cfg, ex, rank)

    outcome = engine.run(factory)
    result = dict(outcome.returns[0])
    result["elapsed"] = outcome.elapsed
    result["stats"] = outcome.stats
    return result
