"""Node-local grid: binding the Q GCDs of a node to the process grid.

Paper Section IV-B: with ``Q = Q_r × Q_c`` GCDs per node, binding each
node to a contiguous ``Q_r × Q_c`` tile of the process grid yields a node
layout ``K_r × K_c`` with ``K_r = P_r / Q_r`` and ``K_c = P_c / Q_c``.
The panel broadcasts then move

    Data_Size = 2 N^2 / K_r + 2 N^2 / K_c          (eq. 4, FP16 bytes)

through each node's NICs over the whole factorization, and the
NIC-sharing-aware communication time is

    T = 2 N^2 Q_r / (P_r * NBN) + 2 N^2 Q_c / (P_c * NBN)   (eq. 5).

A plain column-major rank placement with Q ranks per node is exactly the
``Q_r = Q, Q_c = 1`` special case, which is why the paper's "column
major" curves appear as one grid choice among the tunable ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.grid.process_grid import ProcessGrid
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class NodeGrid:
    """Assignment of process-grid coordinates to physical nodes.

    Parameters
    ----------
    grid:
        The global process grid.
    q_rows, q_cols:
        Node-local tile shape; ``q_rows * q_cols`` must equal the GCD
        count per node and must tile the process grid exactly.
    """

    grid: ProcessGrid
    q_rows: int
    q_cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.q_rows, "q_rows")
        check_positive_int(self.q_cols, "q_cols")
        if self.grid.p_rows % self.q_rows != 0:
            raise ConfigurationError(
                f"P_r={self.grid.p_rows} not divisible by Q_r={self.q_rows}"
            )
        if self.grid.p_cols % self.q_cols != 0:
            raise ConfigurationError(
                f"P_c={self.grid.p_cols} not divisible by Q_c={self.q_cols}"
            )

    @property
    def gcds_per_node(self) -> int:
        """``Q = Q_r * Q_c``."""
        return self.q_rows * self.q_cols

    @property
    def k_rows(self) -> int:
        """Node rows ``K_r = P_r / Q_r``."""
        return self.grid.p_rows // self.q_rows

    @property
    def k_cols(self) -> int:
        """Node columns ``K_c = P_c / Q_c``."""
        return self.grid.p_cols // self.q_cols

    @property
    def num_nodes(self) -> int:
        return self.k_rows * self.k_cols

    def node_of_coords(self, p_ir: int, p_ic: int) -> int:
        """Node id hosting process-grid coordinate ``(p_ir, p_ic)``.

        Nodes are numbered column-major over the ``K_r × K_c`` node grid.
        """
        tile_r = p_ir // self.q_rows
        tile_c = p_ic // self.q_cols
        if not (0 <= tile_r < self.k_rows and 0 <= tile_c < self.k_cols):
            raise ConfigurationError(
                f"coordinate ({p_ir}, {p_ic}) outside grid {self.grid}"
            )
        return tile_c * self.k_rows + tile_r

    def node_of_rank(self, rank: int) -> int:
        """Node id hosting ``rank``."""
        return self.node_of_coords(*self.grid.coords_of(rank))

    def gcd_of_rank(self, rank: int) -> int:
        """Index of the GCD (0..Q-1) within its node that hosts ``rank``."""
        p_ir, p_ic = self.grid.coords_of(rank)
        local_r = p_ir % self.q_rows
        local_c = p_ic % self.q_cols
        return local_c * self.q_rows + local_r

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a node (intra-node link vs NIC)."""
        return self.node_of_rank(rank_a) == self.node_of_rank(rank_b)

    def nic_sharing(self) -> Tuple[int, int]:
        """Ranks sharing the node NICs along each broadcast direction.

        A row broadcast leaves the node through its NICs once per process
        row present on the node, i.e. ``Q_r`` ranks contend; likewise
        ``Q_c`` for column broadcasts.  These are the ``Q_r``/``Q_c``
        factors of eq. (5).
        """
        return self.q_rows, self.q_cols

    def __str__(self) -> str:
        return (
            f"NodeGrid(Q={self.q_rows}x{self.q_cols}, "
            f"K={self.k_rows}x{self.k_cols}, nodes={self.num_nodes})"
        )

    def render(self, max_dim: int = 16) -> str:
        """ASCII picture of the process grid colored by node (Fig 2).

        Each cell is one process-grid coordinate; the letter identifies
        the hosting node, so the Q_r x Q_c tiles are visible at a
        glance.  Grids larger than ``max_dim`` are truncated with
        ellipses.
        """
        symbols = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
        rows = min(self.grid.p_rows, max_dim)
        cols = min(self.grid.p_cols, max_dim)
        lines = [str(self)]
        header = "      " + " ".join(f"c{c:<2d}" for c in range(cols))
        lines.append(header + (" ..." if cols < self.grid.p_cols else ""))
        for r in range(rows):
            cells = []
            for c in range(cols):
                node = self.node_of_coords(r, c)
                cells.append(f" {symbols[node % len(symbols)]} ")
            suffix = " ..." if cols < self.grid.p_cols else ""
            lines.append(f"r{r:<4d}" + " ".join(cells) + suffix)
        if rows < self.grid.p_rows:
            lines.append("  ...")
        return "\n".join(lines)


def node_comm_volume(n: int, node_grid: NodeGrid, panel_bytes: int = 2) -> Tuple[float, float]:
    """Per-node broadcast traffic over a full factorization (eq. 4).

    Returns ``(row_bytes, col_bytes)``: the FP16 panel volume a node must
    move for the row-wise (U) and column-wise (L) broadcasts,
    ``2 N^2 / K_r`` and ``2 N^2 / K_c`` with the default 2-byte panels.
    """
    check_positive_int(n, "n")
    n2 = float(n) * float(n)
    return (
        panel_bytes * n2 / node_grid.k_rows,
        panel_bytes * n2 / node_grid.k_cols,
    )
