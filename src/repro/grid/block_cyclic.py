"""One-dimensional block-cyclic index arithmetic.

A dimension of ``n`` elements is cut into ``n / b`` blocks of size ``b``
dealt round-robin to ``p`` processes: global block ``I`` lives on process
``I mod p`` as that process's local block ``I // p``.  The 2D layout is
the Cartesian product of two of these.

HPL-AI sizes the problem so that every process holds the same number of
full blocks (``N`` is *"adjusted to a multiple of P_r, P_c and B"*), so
this module requires exact divisibility rather than implementing ragged
edges — matching the paper's "matrix of full blocks without needing
padding on any node".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class BlockCyclicDim:
    """Block-cyclic distribution of one matrix dimension.

    Parameters
    ----------
    n:
        Global extent (must be a multiple of ``b * p``).
    b:
        Block size.
    p:
        Number of processes in this dimension.
    """

    n: int
    b: int
    p: int

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.b, "b")
        check_positive_int(self.p, "p")
        if self.n % (self.b * self.p) != 0:
            raise ConfigurationError(
                f"n={self.n} must be a multiple of b*p={self.b * self.p} "
                f"(b={self.b}, p={self.p}) for a padding-free layout"
            )

    # -- block-level maps --------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Total number of global blocks in this dimension."""
        return self.n // self.b

    @property
    def blocks_per_proc(self) -> int:
        """Local block count (identical on every process by construction)."""
        return self.num_blocks // self.p

    @property
    def local_n(self) -> int:
        """Local extent ``N_L = n / p`` in elements."""
        return self.n // self.p

    def owner(self, block: int) -> int:
        """Process owning global block ``block``."""
        self._check_block(block)
        return block % self.p

    def local_block(self, block: int) -> int:
        """Local block index of global block ``block`` on its owner."""
        self._check_block(block)
        return block // self.p

    def global_block(self, proc: int, local_block: int) -> int:
        """Inverse map: the global block at ``local_block`` on ``proc``."""
        if not 0 <= proc < self.p:
            raise ConfigurationError(f"proc {proc} out of range for p={self.p}")
        if not 0 <= local_block < self.blocks_per_proc:
            raise ConfigurationError(
                f"local block {local_block} out of range "
                f"(blocks_per_proc={self.blocks_per_proc})"
            )
        return local_block * self.p + proc

    # -- element-level maps --------------------------------------------------

    def owner_of_index(self, i: int) -> int:
        """Process owning global element index ``i``."""
        self._check_index(i)
        return (i // self.b) % self.p

    def local_index(self, i: int) -> int:
        """Local element offset of global index ``i`` on its owner."""
        self._check_index(i)
        block, offset = divmod(i, self.b)
        return (block // self.p) * self.b + offset

    def global_index(self, proc: int, local_i: int) -> int:
        """Inverse of :meth:`local_index`."""
        if not 0 <= local_i < self.local_n:
            raise ConfigurationError(
                f"local index {local_i} out of range (local_n={self.local_n})"
            )
        local_block, offset = divmod(local_i, self.b)
        return self.global_block(proc, local_block) * self.b + offset

    def element_indices(self, proc: int) -> np.ndarray:
        """Global element index of every local element on ``proc``.

        The vectorized inverse of :meth:`local_index` — an int64 array of
        length :attr:`local_n`, strictly increasing (block-cyclic layout
        preserves order within a process).  Hot-path code precomputes
        this once and uses it for bulk gather/scatter instead of calling
        :meth:`global_index` per element.
        """
        if not 0 <= proc < self.p:
            raise ConfigurationError(f"proc {proc} out of range for p={self.p}")
        i = np.arange(self.local_n, dtype=np.int64)
        return ((i // self.b) * self.p + proc) * self.b + i % self.b

    def local_blocks_at_or_after(self, proc: int, first_global_block: int) -> int:
        """How many of ``proc``'s blocks have global index >= ``first_global_block``.

        This is the local extent (in blocks) of the trailing submatrix at
        factorization step ``k = first_global_block`` — the quantity that
        drives per-rank TRSM/GEMM sizes.
        """
        if not 0 <= proc < self.p:
            raise ConfigurationError(f"proc {proc} out of range for p={self.p}")
        if first_global_block >= self.num_blocks:
            return 0
        first = max(first_global_block, 0)
        # Smallest local block l with l*p + proc >= first:
        lo = (first - proc + self.p - 1) // self.p
        lo = max(lo, 0)
        return max(self.blocks_per_proc - lo, 0)

    # -- internal ------------------------------------------------------------

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise ConfigurationError(
                f"block {block} out of range (num_blocks={self.num_blocks})"
            )

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise ConfigurationError(f"index {i} out of range (n={self.n})")
