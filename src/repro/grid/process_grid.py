"""The 2D process grid ``P = P_r × P_c``.

Each MPI rank is mapped to a coordinate ``(p_ir, p_ic)``; the diagonal
block ``A(k, k)`` at factorization step ``k`` is owned by process
``(k mod P_r, k mod P_c)`` (Algorithm 1's ``processmapping``).  Rank
numbering order ("column-major" in the paper's plots) decides which
ranks are node neighbours when no explicit node-local grid is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError, RankError
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ProcessGrid:
    """A ``P_r × P_c`` grid of MPI ranks.

    Parameters
    ----------
    p_rows, p_cols:
        Grid extents.  The paper uses square grids (``P_r = P_c``) for
        the achievement runs but the code supports rectangles.
    order:
        Rank-numbering order: ``"col"`` (column-major; rank 0, 1, ...
        walk down the first process column — the paper's default) or
        ``"row"``.
    """

    p_rows: int
    p_cols: int
    order: str = "col"

    def __post_init__(self) -> None:
        check_positive_int(self.p_rows, "p_rows")
        check_positive_int(self.p_cols, "p_cols")
        if self.order not in ("col", "row"):
            raise ConfigurationError(
                f"order must be 'col' or 'row', got {self.order!r}"
            )

    @property
    def size(self) -> int:
        """Total rank count ``P = P_r * P_c``."""
        return self.p_rows * self.p_cols

    def rank_of(self, p_ir: int, p_ic: int) -> int:
        """Rank id of grid coordinate ``(p_ir, p_ic)``."""
        if not (0 <= p_ir < self.p_rows and 0 <= p_ic < self.p_cols):
            raise RankError(
                f"grid coordinate ({p_ir}, {p_ic}) outside "
                f"{self.p_rows}x{self.p_cols}"
            )
        if self.order == "col":
            return p_ic * self.p_rows + p_ir
        return p_ir * self.p_cols + p_ic

    def coords_of(self, rank: int) -> Tuple[int, int]:
        """Grid coordinate ``(p_ir, p_ic)`` of a rank id."""
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside grid of size {self.size}")
        if self.order == "col":
            p_ic, p_ir = divmod(rank, self.p_rows)
        else:
            p_ir, p_ic = divmod(rank, self.p_cols)
        return p_ir, p_ic

    def diagonal_owner(self, k: int) -> Tuple[int, int]:
        """``processmapping(k)``: grid coordinates owning block ``A(k, k)``."""
        if k < 0:
            raise ConfigurationError(f"step index must be >= 0, got {k}")
        return k % self.p_rows, k % self.p_cols

    def row_members(self, p_ir: int) -> List[int]:
        """Ranks of process row ``p_ir`` — scope of the U-panel broadcast."""
        return [self.rank_of(p_ir, c) for c in range(self.p_cols)]

    def col_members(self, p_ic: int) -> List[int]:
        """Ranks of process column ``p_ic`` — scope of the L-panel broadcast."""
        return [self.rank_of(r, p_ic) for r in range(self.p_rows)]

    def iter_ranks(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(rank, p_ir, p_ic)`` for every rank, in rank order."""
        for rank in range(self.size):
            p_ir, p_ic = self.coords_of(rank)
            yield rank, p_ir, p_ic

    def __str__(self) -> str:
        return f"{self.p_rows}x{self.p_cols} ({self.order}-major)"
