"""Process grids, block-cyclic data distribution, and node-local mapping.

The global matrix is partitioned into B×B blocks distributed over a
``P_r × P_c`` process grid with a 2D block-cyclic layout (paper Section
III-C).  On top of that, the *node-local grid* (Section IV-B) binds the
``Q = Q_r × Q_c`` GCDs of each node to a contiguous Q_r×Q_c tile of the
process grid, which controls how much broadcast traffic crosses the
node's NICs (eq. 4).
"""

from repro.grid.block_cyclic import BlockCyclicDim
from repro.grid.process_grid import ProcessGrid
from repro.grid.node_grid import NodeGrid, node_comm_volume

__all__ = [
    "BlockCyclicDim",
    "ProcessGrid",
    "NodeGrid",
    "node_comm_volume",
]
