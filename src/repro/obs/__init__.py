"""Unified observability: spans, metrics, exporters, run provenance.

The paper's extreme-scale practice rests on *recorded, comparable*
telemetry — "a detailed progress report for each component at definable
iterations" compared against "previously recorded data" (Section VI-B).
This package is the single telemetry path for the whole reproduction:

- :mod:`repro.obs.tracer` — span tracer (who did what, when, on which
  rank) with a bounded-memory ring option;
- :mod:`repro.obs.metrics` — typed metrics registry (counters, gauges,
  fixed-bucket histograms) with cross-rank ``snapshot()``/``merge()``;
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON, JSONL
  event logs, and a Prometheus-style text dump;
- :mod:`repro.obs.provenance` — run-provenance capture so recorded runs
  are comparable across campaigns;
- :mod:`repro.obs.context` — the process-wide :class:`Observability`
  handle with a no-op default, so instrumentation costs ~nothing when
  disabled;
- :mod:`repro.obs.health` — online health telemetry: time-series
  sampler, straggler/collapse/limplock detectors, run watchdog, and a
  self-contained HTML dashboard (attach a
  :class:`~repro.obs.health.HealthMonitor` via ``Observability(health=...)``).

Quick start::

    from repro.obs import Observability, use
    from repro.core.driver import simulate_run

    obs = Observability()
    with use(obs):
        result = simulate_run(cfg)
    obs.export_chrome_trace("trace.json")   # open in ui.perfetto.dev
"""

from repro.obs.context import Observability, current, set_current, use
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.provenance import run_provenance
from repro.obs.tracer import Span, SpanTracer

__all__ = [
    "Observability",
    "current",
    "set_current",
    "use",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "run_provenance",
]
