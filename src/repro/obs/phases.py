"""The wire-tag → benchmark-phase vocabulary shared by emitters and
analysis.

The factorization rank program (:mod:`repro.core.hplai`) scopes step
``k``'s collectives with *logical* tags ``STEP_STRIDE * k + phase``
(phase ∈ diag-row, diag-col, U-panel, L-panel) and iterative refinement
uses a disjoint high window starting at :data:`IR_TAG_BASE`.  Each
logical tag owns the wire window ``[tag * TAG_STRIDE, (tag+1) *
TAG_STRIDE)`` (:data:`repro.comm.bcast.TAG_STRIDE`).

This module is the single source of truth for that layout: the rank
program builds tags from these constants, the comm facade labels its
byte counters with :func:`phase_of_logical_tag`, and the trace-analysis
layer (:mod:`repro.obs.analysis`) decodes exported span attrs back into
phases with :func:`decode_wire_tag` — which is what makes a Fig.-10
style "which phase bounds this step" attribution possible from a trace
file alone.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: logical tags per factorization step
STEP_STRIDE = 8

#: phase offsets within one step's tag window
TAG_DIAG_ROW = 0
TAG_DIAG_COL = 1
TAG_U_PANEL = 2
TAG_L_PANEL = 3

#: first logical tag of the GMRES sweep window (disjoint from the
#: factorization steps; see :mod:`repro.core.gmres`)
GMRES_TAG_BASE = 1 << 16

#: first logical tag of the iterative-refinement window (disjoint from
#: every factorization step's window)
IR_TAG_BASE = 1 << 22

#: phase offset → human-readable comm-phase name
_OFFSET_PHASE = {
    TAG_DIAG_ROW: "diag_bcast",
    TAG_DIAG_COL: "diag_bcast",
    TAG_U_PANEL: "panel_bcast",
    TAG_L_PANEL: "panel_bcast",
}


def phase_of_logical_tag(tag: int) -> str:
    """Comm-phase name for a logical tag (``ir``, ``diag_bcast``,
    ``panel_bcast``, or ``comm`` for anything outside the layout)."""
    return decode_logical_tag(tag)[0]


def decode_logical_tag(tag: int) -> Tuple[str, Optional[int]]:
    """``(phase name, factorization step k)``; ``k`` is None outside
    the factorization window.

    Everything at or above :data:`GMRES_TAG_BASE` is solver traffic
    (GMRES sweeps, classical IR, the distributed-HPL window) and maps
    to ``"ir"``.
    """
    if tag >= GMRES_TAG_BASE:
        return "ir", None
    phase = _OFFSET_PHASE.get(tag % STEP_STRIDE)
    if phase is None:
        return "comm", None
    return phase, tag // STEP_STRIDE


def decode_wire_tag(wire_tag: int) -> Tuple[str, Optional[int]]:
    """Decode a *wire* tag (what engine transfer spans record in their
    ``tag`` attr) into ``(phase name, step k or None)``."""
    # Imported here, not at module level: this module sits below the
    # comm package (vmpi labels its counters with phase_of_logical_tag)
    # and a top-level import would be circular.
    from repro.comm.bcast import TAG_STRIDE

    return decode_logical_tag(wire_tag // TAG_STRIDE)
