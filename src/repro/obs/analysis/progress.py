"""Live run telemetry: per-panel-column throughput and projected finish.

The factorization rank program already appends one dict per panel
column to its ``trace`` list (``{"k", "panel", "gemm", "recv"}``, rank 0
only).  :class:`LiveProgressReporter` *is* such a list — the driver
passes it straight through — and on every append it prices the step it
just saw: step-k global flops over step wall time gives the column's
effective GF/s, and the ratio of measured-so-far to modelled-so-far
time rescales the model's remaining-time estimate into a projected
finish.  This mirrors watching a real HPL run's per-column output
scroll by, the paper's first signal that a scaling run is healthy.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO

from repro.util import flops as fl

#: modelled-time sums below this give no stable calibration ratio
_EPS_S = 1e-12


def step_flops(n: int, block: int, num_ranks: int, k: int) -> int:
    """Global useful flops of factorization step ``k``.

    GETRF on the diagonal, two panel TRSMs, and the trailing GEMM —
    the leading terms of eq. (2) for one step.
    """
    r = max(0, n - (k + 1) * block)
    return (
        fl.getrf_flops(block)
        + 2 * fl.trsm_flops(block, r)
        + fl.gemm_flops(r, r, block)
    )


class LiveProgressReporter(list):
    """A factorization trace sink that narrates the run as it happens.

    Drop-in for the plain ``trace`` list the driver feeds rank 0's
    program: every appended per-column record prints

    ``[k 12/40] col 512.3 GF/s/GCD | run 498.1 | 31.2s elapsed, ~78.5s total``

    where the projection scales the model's expected remaining time by
    the measured/modelled ratio of the steps completed so far.
    """

    def __init__(
        self,
        cfg,
        stream: Optional[TextIO] = None,
        every: int = 1,
        warmup: int = 2,
    ) -> None:
        super().__init__()
        self.cfg = cfg
        self.stream = stream or sys.stderr
        self.every = max(1, int(every))
        #: leading columns excluded from the calibration window once
        #: later measurements exist (cold caches skew the ratio)
        self.warmup = max(0, int(warmup))
        self._elapsed = 0.0
        self._flops = 0
        self._measured: List[float] = []
        self._expected = self._expected_step_times(cfg)

    @staticmethod
    def _expected_step_times(cfg) -> List[float]:
        """Modelled per-step critical-path seconds (None-safe fallback)."""
        try:
            from repro.machine.topology import CommCosts
            from repro.model.perf_model import estimate_iteration

            costs = CommCosts(
                cfg.machine, port_binding=cfg.port_binding,
                gpu_aware=cfg.gpu_aware,
            )
            return [
                estimate_iteration(cfg, costs, k).total
                for k in range(cfg.num_blocks)
            ]
        except Exception:  # lint: ignore[hygiene] - model gaps must not kill a run
            return []

    def append(self, record: dict) -> None:
        super().append(record)
        try:
            self._report(record)
        except Exception:  # lint: ignore[hygiene] - telemetry must not kill a run
            pass

    def _report(self, record: dict) -> None:
        cfg = self.cfg
        k = int(record.get("k", len(self) - 1))
        step_s = (
            float(record.get("panel", 0.0))
            + float(record.get("gemm", 0.0))
            + float(record.get("recv", 0.0))
        )
        self._elapsed += step_s
        self._measured.append(step_s)
        f = step_flops(cfg.n, cfg.block, cfg.num_ranks, k)
        self._flops += f
        if (k + 1) % self.every and (k + 1) != cfg.num_blocks:
            return
        col_gfs = f / step_s / cfg.num_ranks / 1e9 if step_s > 0 else 0.0
        run_gfs = (
            self._flops / self._elapsed / cfg.num_ranks / 1e9
            if self._elapsed > 0 else 0.0
        )
        line = (
            f"[k {k + 1:>{len(str(cfg.num_blocks))}}/{cfg.num_blocks}] "
            f"col {col_gfs:8.1f} GF/s/GCD | run {run_gfs:8.1f} | "
            f"{self._elapsed:.2f}s elapsed"
        )
        projected = self.projected_total()
        if projected is not None:
            line += f", ~{projected:.2f}s total"
        print(line, file=self.stream)

    def projected_total(self) -> Optional[float]:
        """Projected factorization seconds (measured-calibrated model).

        The measured/modelled ratio is taken over the *post-warm-up*
        columns once any exist — the first panel columns run with cold
        caches and near-zero modelled times, and calibrating on them
        made early projections swing wildly.  A near-zero modelled
        divisor yields ``None`` instead of a nonsense extrapolation.
        """
        done = len(self._measured)
        if not self._expected or done == 0 or done > len(self._expected):
            return None
        start = self.warmup if done > self.warmup else 0
        expected_done = sum(self._expected[start:done])
        if expected_done <= _EPS_S:
            return None
        measured_done = sum(self._measured[start:done])
        ratio = measured_done / expected_done
        remaining = sum(self._expected[done:])
        return self._elapsed + ratio * remaining
