"""Span loading and normalization for the analysis layer.

Every analysis in this package runs off one normalized input — a flat
list of :class:`~repro.obs.tracer.Span` objects plus whatever metadata
rode along (provenance, metrics snapshot) — so the same critical-path /
imbalance / comm-matrix code works on:

- a live :class:`~repro.obs.SpanTracer` (or ``Observability`` handle),
- an exported Chrome-trace JSON file (``repro trace --out``), or
- an exported JSONL span log (``repro trace --jsonl``).

The loaders also own the *semantic* mapping from raw span names to
benchmark phases (:func:`phase_of_span`): executor kernel kinds map to
themselves, refinement kernels collapse into ``ir``, and comm/wait
spans are decoded through their wire-tag attr
(:func:`repro.obs.phases.decode_wire_tag`) into ``diag_bcast`` /
``panel_bcast`` / ``ir`` traffic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.phases import decode_wire_tag
from repro.obs.tracer import Span, SpanTracer

#: executor span names that are benchmark phases of their own
_EXECUTOR_PHASES = {"getrf", "trsm", "cast", "gemm", "fill", "d2h"}

#: executor span names that belong to the refinement solve
_IR_KERNELS = {"gemv", "trsv", "ir_gemv", "ir_setup", "ir_update"}

#: engine wait kinds that are synchronization, not point-to-point comm
_COLLECTIVE_WAITS = {"wait_allreduce", "wait_reduce", "wait_barrier"}


@dataclass
class ProfileInput:
    """Normalized analysis input: spans + run metadata."""

    spans: List[Span]
    #: wall time of the observed window (max span end, virtual seconds)
    elapsed: float
    #: world size implied by the spans (max rank + 1)
    num_ranks: int
    provenance: Optional[dict] = None
    #: metrics snapshot exported alongside the trace, if any
    metrics: Optional[dict] = None
    source: str = "<tracer>"


def _bounds(spans: List[Span]) -> Tuple[float, int]:
    elapsed = max((s.end for s in spans), default=0.0)
    num_ranks = max((s.rank for s in spans), default=-1) + 1
    return elapsed, num_ranks


def from_tracer(
    tracer: SpanTracer,
    provenance: Optional[dict] = None,
    metrics: Optional[dict] = None,
) -> ProfileInput:
    """Wrap a live tracer's spans as analysis input."""
    spans = tracer.spans
    elapsed, num_ranks = _bounds(spans)
    return ProfileInput(
        spans=spans, elapsed=elapsed, num_ranks=num_ranks,
        provenance=provenance, metrics=metrics,
    )


def from_observability(obs) -> ProfileInput:
    """Wrap an :class:`~repro.obs.Observability` handle as input."""
    metrics = obs.metrics.snapshot() if len(obs.metrics) else None
    return from_tracer(obs.tracer, provenance=obs.provenance, metrics=metrics)


def _rank_of_tid(tid: int, labels: dict) -> int:
    label = labels.get(tid)
    if label == "driver":
        return -1
    if label is not None and label.startswith("rank "):
        try:
            return int(label.split()[1])
        except ValueError:
            pass
    return tid


def _spans_from_chrome(doc: dict) -> List[Span]:
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError(
            "not a Chrome trace: top-level 'traceEvents' list is missing"
        )
    labels = {
        ev.get("tid"): ev.get("args", {}).get("name")
        for ev in events
        if isinstance(ev, dict) and ev.get("ph") == "M"
        and ev.get("name") == "thread_name"
    }
    spans = []
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        start = float(ev.get("ts", 0.0)) / 1e6
        dur = float(ev.get("dur", 0.0)) / 1e6
        spans.append(Span(
            name=ev.get("name", ""),
            cat=ev.get("cat", ""),
            start=start,
            end=start + dur,
            rank=_rank_of_tid(ev.get("tid", -1), labels),
            attrs=dict(ev.get("args", {})),
        ))
    return spans


def _spans_from_jsonl(path: Path) -> List[Span]:
    spans = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            spans.append(Span(
                name=rec.get("name", ""),
                cat=rec.get("cat", ""),
                start=float(rec.get("start_s", 0.0)),
                end=float(rec.get("end_s", 0.0)),
                rank=int(rec.get("rank", -1)),
                attrs=dict(rec.get("attrs") or {}),
            ))
    return spans


def load_profile_input(path) -> ProfileInput:
    """Load an exported trace artifact (Chrome JSON or JSONL spans)."""
    p = Path(path)
    if not p.exists():
        raise ConfigurationError(f"trace file {p} does not exist")
    text_head = p.open().read(1).strip()
    if p.suffix == ".jsonl" or text_head not in ("{",):
        spans = _spans_from_jsonl(p)
        prov = metrics = None
    else:
        try:
            doc = json.loads(p.read_text())
        except ValueError as exc:
            raise ConfigurationError(f"{p}: not valid JSON: {exc}") from None
        if isinstance(doc, dict) and "traceEvents" in doc:
            spans = _spans_from_chrome(doc)
            other = doc.get("otherData") or {}
            prov = other.get("provenance")
            metrics = other.get("metrics")
        else:
            raise ConfigurationError(
                f"{p}: neither a Chrome trace (no 'traceEvents') nor a "
                "JSONL span log"
            )
    elapsed, num_ranks = _bounds(spans)
    return ProfileInput(
        spans=spans, elapsed=elapsed, num_ranks=num_ranks,
        provenance=prov, metrics=metrics, source=str(p),
    )


# -- semantic mapping -------------------------------------------------------

def phase_of_span(span: Span) -> str:
    """Benchmark-phase bucket of one span (see module docstring)."""
    if span.cat == "executor":
        if span.name in _EXECUTOR_PHASES:
            return span.name
        if span.name in _IR_KERNELS:
            return "ir"
        return span.name or "other"
    if span.cat in ("comm", "engine"):
        if span.name in _COLLECTIVE_WAITS:
            return "collective"
        tag = span.attrs.get("tag") if span.attrs else None
        if tag is not None:
            return decode_wire_tag(int(tag))[0]
        return "comm"
    if span.cat == "driver":
        return span.name
    return span.cat or "other"


def step_of_span(span: Span) -> Optional[int]:
    """Factorization step ``k`` a comm span belongs to (None if unknown)."""
    tag = span.attrs.get("tag") if span.attrs else None
    if tag is None:
        return None
    return decode_wire_tag(int(tag))[1]


def config_from_provenance(prov: dict):
    """Rebuild the :class:`~repro.core.config.BenchmarkConfig` a
    provenance block describes (for model-vs-measured comparison).

    Raises :class:`~repro.errors.ConfigurationError` when the block has
    no usable ``config`` section.
    """
    from repro.core.config import BenchmarkConfig
    from repro.machine import get_machine

    desc = (prov or {}).get("config")
    if not isinstance(desc, dict):
        raise ConfigurationError(
            "provenance block carries no 'config' section; cannot rebuild "
            "the run configuration"
        )
    try:
        machine = get_machine(str(desc["machine"]))
        p_rows, p_cols = (int(v) for v in str(desc["grid"]).split("x"))
        q_rows, q_cols = (int(v) for v in str(desc["node_grid"]).split("x"))
        kwargs = dict(
            n=int(desc["N"]),
            block=int(desc["B"]),
            machine=machine,
            p_rows=p_rows,
            p_cols=p_cols,
            bcast_algorithm=str(desc["bcast"]),
            lookahead=bool(desc["lookahead"]),
            # older traces predate these fields; their defaults match
            allreduce_algorithm=(
                str(desc["allreduce"]) if desc.get("allreduce") else None
            ),
            progression=str(desc.get("progression", "routed")),
            gpu_aware=bool(desc["gpu_aware"]),
            port_binding=bool(desc["port_binding"]),
        )
        # Sub-node grids record the 1-rank-per-node fallback, which the
        # explicit q_rows/q_cols path (rightly) rejects; passing None
        # re-derives the identical default deterministically.
        if q_rows * q_cols == machine.node.gcds_per_node:
            kwargs["q_rows"] = q_rows
            kwargs["q_cols"] = q_cols
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(
            f"provenance config section is incomplete: {exc}"
        ) from None
    if "seed" in prov:
        kwargs["seed"] = int(prov["seed"])
    if "panel_precision" in prov:
        kwargs["panel_precision"] = str(prov["panel_precision"])
    if "refinement_solver" in prov:
        kwargs["refinement_solver"] = str(prov["refinement_solver"])
    return BenchmarkConfig(**kwargs)
