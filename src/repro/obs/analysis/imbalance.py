"""Per-rank utilization and load-imbalance statistics.

At scale the benchmark is bulk-synchronous: every step the slowest rank
sets the pace and everyone else buries the difference in ``wait_*``
spans.  This module turns a span set into:

- per-rank busy/wait/idle fractions (executor time vs engine-wait time
  vs unaccounted gaps),
- per-phase max/mean ratios across ranks (the classic imbalance
  metric: 1.0 = perfectly balanced, 2.0 = the slowest rank spends twice
  the average), and
- a straggler ranking that flags ranks whose busy time exceeds the
  fleet median by the same threshold rule the slow-node scan uses
  (:func:`repro.tools.slownode.flag_outliers`) — a trace-side
  counterpart to the paper's Section VI-B GCD exclusion sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.obs.analysis.loaders import phase_of_span
from repro.obs.tracer import Span
from repro.tools.slownode import flag_outliers


@dataclass
class RankLoad:
    """Utilization of one rank over the trace window."""

    rank: int
    busy_s: float
    wait_s: float
    elapsed: float

    @property
    def busy_fraction(self) -> float:
        return self.busy_s / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def wait_fraction(self) -> float:
        return self.wait_s / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        return max(0.0, 1.0 - self.busy_fraction - self.wait_fraction)


@dataclass
class PhaseImbalance:
    """Cross-rank spread of one phase's per-rank time."""

    phase: str
    mean_s: float
    max_s: float
    max_rank: int

    @property
    def imbalance(self) -> float:
        """max/mean ratio (1.0 = perfectly balanced)."""
        return self.max_s / self.mean_s if self.mean_s > 0 else 1.0


@dataclass
class ImbalanceReport:
    ranks: List[RankLoad]
    phases: List[PhaseImbalance]
    #: ranks whose busy time exceeds the median by > threshold
    stragglers: List[int]
    threshold: float

    @property
    def mean_busy_fraction(self) -> float:
        if not self.ranks:
            return 0.0
        return sum(r.busy_fraction for r in self.ranks) / len(self.ranks)


def load_imbalance(
    spans: List[Span],
    elapsed: float,
    num_ranks: int,
    threshold: float = 0.02,
) -> ImbalanceReport:
    """Compute utilization + imbalance stats from a span set.

    Busy time is executor (kernel) time; wait time is engine blocking
    (``wait_recv`` etc.).  NIC-occupancy ``xfer`` spans overlap the
    sender's timeline and are excluded from both.
    """
    busy = [0.0] * num_ranks
    wait = [0.0] * num_ranks
    # phase -> per-rank seconds (busy phases only: waits are the
    # *symptom* of imbalance, not its location)
    per_phase: Dict[str, List[float]] = {}
    for sp in spans:
        if sp.rank < 0 or sp.rank >= num_ranks:
            continue
        dur = sp.end - sp.start
        if sp.cat == "executor":
            busy[sp.rank] += dur
            phase = phase_of_span(sp)
            per_phase.setdefault(phase, [0.0] * num_ranks)[sp.rank] += dur
        elif sp.cat == "engine":
            wait[sp.rank] += dur

    ranks = [
        RankLoad(rank=r, busy_s=busy[r], wait_s=wait[r], elapsed=elapsed)
        for r in range(num_ranks)
    ]
    phases = []
    for phase, times in sorted(per_phase.items()):
        mx = max(times)
        phases.append(PhaseImbalance(
            phase=phase,
            mean_s=sum(times) / len(times),
            max_s=mx,
            max_rank=times.index(mx),
        ))
    phases.sort(key=lambda p: -p.max_s)
    stragglers, _, _ = flag_outliers(busy, threshold) if num_ranks else ([], 0, 0)
    return ImbalanceReport(
        ranks=ranks, phases=phases, stragglers=stragglers, threshold=threshold
    )
