"""The combined profile report: build, serialize, render, compare.

:func:`build_profile` runs every analysis in this package over one
:class:`~repro.obs.analysis.loaders.ProfileInput` and returns a
:class:`ProfileReport` that can render as an ASCII report (``repro
profile``), serialize to a schema-versioned JSON document
(:data:`PROFILE_SCHEMA`, checked by ``repro lint``'s profile-schema
checker), flatten to CSV rows, or diff against a previously saved
report for regression gating (:func:`compare_profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.analysis.comm_matrix import CommMatrix, comm_matrix
from repro.obs.analysis.critical_path import CriticalPathResult, critical_path
from repro.obs.analysis.deviation import (
    DeviationReport,
    Regression,
    measured_phase_seconds,
    model_vs_measured,
    regression_deltas,
)
from repro.obs.analysis.imbalance import ImbalanceReport, load_imbalance
from repro.obs.analysis.loaders import ProfileInput, config_from_provenance
from repro.util.format import render_table

#: schema tag of serialized profile reports (bump on breaking change)
PROFILE_SCHEMA = "repro.obs.profile/v1"

#: dense comm matrices beyond this world size are omitted from JSON
_MATRIX_RANK_CAP = 64


@dataclass
class ProfileReport:
    """Everything ``repro profile`` knows about one run."""

    source: str
    elapsed: float
    num_ranks: int
    num_spans: int
    path: CriticalPathResult
    imbalance: ImbalanceReport
    comm: CommMatrix
    #: busiest-rank measured seconds per phase (regression-gate basis)
    phase_seconds: Dict[str, float]
    deviation: Optional[DeviationReport] = None
    provenance: Optional[dict] = None

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned JSON document (:data:`PROFILE_SCHEMA`)."""
        doc = {
            "schema": PROFILE_SCHEMA,
            "source": self.source,
            "elapsed_s": self.elapsed,
            "num_ranks": self.num_ranks,
            "num_spans": self.num_spans,
            "critical_path": {
                "bounding_phase": self.path.bounding_phase,
                "coverage": round(self.path.coverage, 6),
                "num_segments": len(self.path.segments),
                "phase_seconds": {
                    p: s for p, s in self.path.phase_seconds.items()
                },
                "step_bound": {
                    str(k): p for k, p in self.path.step_bound.items()
                },
            },
            "imbalance": {
                "threshold": self.imbalance.threshold,
                "mean_busy_fraction": round(
                    self.imbalance.mean_busy_fraction, 6
                ),
                "stragglers": list(self.imbalance.stragglers),
                "ranks": [
                    {
                        "rank": r.rank,
                        "busy_s": r.busy_s,
                        "wait_s": r.wait_s,
                        "busy_fraction": round(r.busy_fraction, 6),
                        "idle_fraction": round(r.idle_fraction, 6),
                    }
                    for r in self.imbalance.ranks
                ],
                "phases": [
                    {
                        "phase": p.phase,
                        "mean_s": p.mean_s,
                        "max_s": p.max_s,
                        "max_rank": p.max_rank,
                        "imbalance": round(p.imbalance, 6),
                    }
                    for p in self.imbalance.phases
                ],
            },
            "comm": {
                "total_bytes": self.comm.total_bytes,
                "total_messages": self.comm.total_messages,
                "intra_bytes": self.comm.intra_bytes,
                "inter_bytes": self.comm.inter_bytes,
                "bytes_by_phase": dict(self.comm.bytes_by_phase),
                "top_pairs": [
                    list(t) for t in self.comm.top_pairs(10)
                ],
            },
            "phase_seconds": dict(self.phase_seconds),
            "provenance": self.provenance,
        }
        if self.num_ranks <= _MATRIX_RANK_CAP:
            doc["comm"]["matrix"] = self.comm.matrix()
        if self.deviation is not None:
            dev = self.deviation
            doc["deviation"] = {
                "measured_total_s": dev.measured_total,
                "model_total_s": dev.model_total,
                "total_deviation": dev.total_deviation,
                "phases": [
                    {
                        "phase": p.phase,
                        "measured_s": p.measured_s,
                        "model_s": p.model_s,
                        "deviation": p.deviation,
                    }
                    for p in dev.phases
                ],
            }
        return doc

    # -- rendering --------------------------------------------------------

    def render_text(self) -> str:
        """The four-section ASCII report ``repro profile`` prints."""
        blocks = [self._render_header(), self._render_path(),
                  self._render_imbalance(), self._render_comm()]
        if self.deviation is not None:
            blocks.append(self._render_deviation())
        return "\n\n".join(blocks)

    def _render_header(self) -> str:
        lines = [
            f"profile: {self.source}",
            f"  elapsed {self.elapsed:.4f}s over {self.num_ranks} rank(s), "
            f"{self.num_spans} spans",
        ]
        if self.provenance and isinstance(self.provenance.get("config"), dict):
            c = self.provenance["config"]
            lines.append(
                f"  run: {c.get('machine')} N={c.get('N')} B={c.get('B')} "
                f"grid={c.get('grid')} bcast={c.get('bcast')}"
            )
        return "\n".join(lines)

    def _render_path(self) -> str:
        rows = [
            [phase, f"{secs:.4f}",
             f"{secs / self.elapsed:.1%}" if self.elapsed > 0 else "-"]
            for phase, secs in self.path.phase_seconds.items()
        ]
        title = (
            f"critical path: bounded by {self.path.bounding_phase or '-'} "
            f"({len(self.path.segments)} segments, "
            f"{self.path.coverage:.1%} of wall time attributed)"
        )
        return render_table(["phase", "path_s", "of wall"], rows, title=title)

    def _render_imbalance(self) -> str:
        rows = [
            [p.phase, f"{p.mean_s:.4f}", f"{p.max_s:.4f}",
             p.max_rank, f"{p.imbalance:.3f}"]
            for p in self.imbalance.phases
        ]
        extra = (
            f"stragglers: ranks {self.imbalance.stragglers}"
            if self.imbalance.stragglers else "no stragglers flagged"
        )
        title = (
            f"load balance: mean busy "
            f"{self.imbalance.mean_busy_fraction:.1%}, {extra} "
            f"(threshold {self.imbalance.threshold:.0%} over median)"
        )
        return render_table(
            ["phase", "mean_s", "max_s", "max_rank", "max/mean"],
            rows, title=title,
        )

    def _render_comm(self) -> str:
        rows = [
            [src, dst, _fmt_bytes(b), m]
            for src, dst, b, m in self.comm.top_pairs(10)
        ]
        total = self.comm.total_bytes
        intra = (
            self.comm.intra_bytes / total if total else 0.0
        )
        by_phase = ", ".join(
            f"{p} {_fmt_bytes(b)}"
            for p, b in sorted(
                self.comm.bytes_by_phase.items(), key=lambda kv: -kv[1]
            )
        )
        title = (
            f"comm matrix: {_fmt_bytes(total)} in "
            f"{self.comm.total_messages} msgs, {intra:.0%} intra-node"
            + (f" | {by_phase}" if by_phase else "")
        )
        return render_table(
            ["src", "dst", "bytes", "msgs"], rows, title=title
        )

    def _render_deviation(self) -> str:
        dev = self.deviation
        rows = [
            [p.phase, f"{p.measured_s:.4f}", f"{p.model_s:.4f}",
             f"{p.deviation:+.1%}" if p.deviation is not None else "-"]
            for p in dev.phases
        ]
        total = dev.total_deviation
        title = (
            f"model vs measured: total {dev.measured_total:.4f}s vs "
            f"{dev.model_total:.4f}s modelled"
            + (f" ({total:+.1%})" if total is not None else "")
        )
        return render_table(
            ["phase", "measured_s", "model_s", "deviation"], rows, title=title
        )

    def csv_rows(self) -> List[List[object]]:
        """Flat ``section,name,value`` rows (spreadsheet-friendly)."""
        rows: List[List[object]] = [["section", "name", "value"]]
        rows.append(["run", "elapsed_s", self.elapsed])
        rows.append(["run", "num_ranks", self.num_ranks])
        rows.append(["run", "num_spans", self.num_spans])
        rows.append(
            ["critical_path", "bounding_phase", self.path.bounding_phase]
        )
        for phase, secs in self.path.phase_seconds.items():
            rows.append(["critical_path", phase, secs])
        for p in self.imbalance.phases:
            rows.append(["imbalance", p.phase, p.imbalance])
        for r in self.imbalance.ranks:
            rows.append(["busy_fraction", f"rank{r.rank}", r.busy_fraction])
        for phase, b in sorted(self.comm.bytes_by_phase.items()):
            rows.append(["comm_bytes", phase, b])
        for phase, secs in self.phase_seconds.items():
            rows.append(["phase_seconds", phase, secs])
        if self.deviation is not None:
            for p in self.deviation.phases:
                if p.deviation is not None:
                    rows.append(["deviation", p.phase, p.deviation])
        return rows


def _fmt_bytes(b: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(b) < 1024 or unit == "GiB":
            return f"{b:.1f}{unit}" if unit != "B" else f"{b}B"
        b /= 1024.0
    return f"{b}B"  # pragma: no cover


def build_profile(
    pi: ProfileInput,
    cfg=None,
    threshold: float = 0.02,
    with_model: bool = True,
) -> ProfileReport:
    """Run every analysis over one input.

    ``cfg`` enables the model-vs-measured section; when None it is
    rebuilt from the input's provenance when possible (``with_model=
    False`` skips the section entirely).
    """
    if not pi.spans:
        raise ConfigurationError(
            f"{pi.source}: no spans to analyze (was the run traced?)"
        )
    path = critical_path(pi.spans, pi.elapsed)
    imb = load_imbalance(pi.spans, pi.elapsed, pi.num_ranks, threshold)
    comm = comm_matrix(pi.spans, pi.num_ranks)
    phase_seconds = measured_phase_seconds(pi.spans, pi.num_ranks)
    deviation = None
    if with_model:
        if cfg is None and pi.provenance:
            try:
                cfg = config_from_provenance(pi.provenance)
            except ConfigurationError:
                cfg = None
        if cfg is not None:
            deviation = model_vs_measured(
                pi.spans, cfg, pi.elapsed, pi.num_ranks
            )
    return ProfileReport(
        source=pi.source,
        elapsed=pi.elapsed,
        num_ranks=pi.num_ranks,
        num_spans=len(pi.spans),
        path=path,
        imbalance=imb,
        comm=comm,
        phase_seconds=phase_seconds,
        deviation=deviation,
        provenance=pi.provenance,
    )


def compare_profiles(
    current: dict,
    baseline: dict,
    threshold: float,
    min_seconds: float = 1e-6,
) -> List[Regression]:
    """Per-phase regression deltas between two serialized reports.

    Both documents must be :data:`PROFILE_SCHEMA` dicts (e.g. from
    ``repro profile --format json``); the comparison basis is their
    busiest-rank ``phase_seconds`` maps plus total elapsed.
    """
    for name, doc in (("current", current), ("baseline", baseline)):
        if not isinstance(doc, dict) or "phase_seconds" not in doc:
            raise ConfigurationError(
                f"{name} document is not a profile report "
                f"(missing 'phase_seconds'; expected schema {PROFILE_SCHEMA})"
            )
    cur = dict(current["phase_seconds"])
    base = dict(baseline["phase_seconds"])
    cur["total_elapsed"] = float(current.get("elapsed_s", 0.0))
    base["total_elapsed"] = float(baseline.get("elapsed_s", 0.0))
    return regression_deltas(cur, base, threshold, min_seconds=min_seconds)
