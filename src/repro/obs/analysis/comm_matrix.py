"""Rank-pair communication matrix from engine transfer spans.

Every point-to-point transfer the engine models emits an ``xfer`` span
on the *sender's* lane with attrs ``{dst, bytes, intra, [tag]}``.
Aggregating those gives the classic communication matrix — bytes and
message counts per (src, dst) pair — plus a per-phase split via the
wire tag (diag broadcast vs panel broadcast vs refinement traffic),
and an intra/inter-node split via the ``intra`` flag.  On the paper's
machines this is how you see the broadcast algorithm's shape: a
binomial tree concentrates traffic on low ranks, the modified rings
spread it along the neighbour diagonals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.analysis.loaders import phase_of_span
from repro.obs.tracer import Span


@dataclass
class CommMatrix:
    """Aggregated point-to-point traffic for one trace."""

    num_ranks: int
    bytes_by_pair: Dict[Tuple[int, int], int] = field(default_factory=dict)
    msgs_by_pair: Dict[Tuple[int, int], int] = field(default_factory=dict)
    bytes_by_phase: Dict[str, int] = field(default_factory=dict)
    intra_bytes: int = 0
    inter_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_pair.values())

    @property
    def total_messages(self) -> int:
        return sum(self.msgs_by_pair.values())

    def matrix(self) -> List[List[int]]:
        """Dense bytes matrix, ``m[src][dst]``."""
        m = [[0] * self.num_ranks for _ in range(self.num_ranks)]
        for (src, dst), b in self.bytes_by_pair.items():
            if 0 <= src < self.num_ranks and 0 <= dst < self.num_ranks:
                m[src][dst] = b
        return m

    def top_pairs(self, n: int = 10) -> List[Tuple[int, int, int, int]]:
        """Heaviest (src, dst, bytes, msgs) pairs, descending by bytes."""
        pairs = sorted(self.bytes_by_pair.items(), key=lambda kv: -kv[1])
        return [
            (src, dst, b, self.msgs_by_pair.get((src, dst), 0))
            for (src, dst), b in pairs[:n]
        ]


def comm_matrix(spans: List[Span], num_ranks: int) -> CommMatrix:
    """Build the communication matrix from a span set."""
    cm = CommMatrix(num_ranks=num_ranks)
    for sp in spans:
        if sp.cat != "comm" or sp.name != "xfer" or "dst" not in sp.attrs:
            continue
        src, dst = sp.rank, int(sp.attrs["dst"])
        size = int(sp.attrs.get("bytes", 0))
        key = (src, dst)
        cm.bytes_by_pair[key] = cm.bytes_by_pair.get(key, 0) + size
        cm.msgs_by_pair[key] = cm.msgs_by_pair.get(key, 0) + 1
        phase = phase_of_span(sp)
        cm.bytes_by_phase[phase] = cm.bytes_by_phase.get(phase, 0) + size
        if sp.attrs.get("intra"):
            cm.intra_bytes += size
        else:
            cm.inter_bytes += size
    return cm
