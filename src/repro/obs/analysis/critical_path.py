"""Critical-path extraction over the span DAG.

The simulator's spans form a DAG: within one rank, spans are totally
ordered by time; across ranks, a ``wait_recv`` span (attrs ``src`` /
``tag``) depends on the matching ``xfer`` span on the sender.  The
*critical path* is the dependency chain ending at the globally latest
span — the sequence of work/wait segments that actually bounded wall
time.  Attribution of its segments to benchmark phases is the Fig.-10
style answer to "what bounds this run: panel GETRF/TRSM, the
broadcasts, the GEMM update, or refinement?".

Algorithm (back-walk): start from the span with the latest end time.
From a ``wait_recv`` span, jump to the sender's matching ``xfer`` span
(same tag, latest end not after the wait's end); from anything else,
step to the same-rank predecessor with the latest end at or before the
span's start.  Stop when no predecessor exists.  Gaps between
consecutive path segments (scheduler slack the trace doesn't explain)
are reported as uncovered time rather than attributed to a phase.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.analysis.loaders import phase_of_span, step_of_span
from repro.obs.tracer import Span

#: slack tolerated when matching predecessor end times (float noise)
_EPS = 1e-9


@dataclass
class PathSegment:
    """One span on the critical path (time-ordered)."""

    span: Span
    phase: str
    step: Optional[int]

    @property
    def duration(self) -> float:
        return self.span.end - self.span.start


@dataclass
class CriticalPathResult:
    """The extracted path plus its phase attribution."""

    segments: List[PathSegment]
    #: seconds of path time per benchmark phase, descending order
    phase_seconds: Dict[str, float]
    #: total wall time of the trace window
    elapsed: float
    #: fraction of ``elapsed`` the path's segments explain
    coverage: float
    #: per-factorization-step bounding phase, for steps whose comm
    #: segments appear on the path
    step_bound: Dict[int, str] = field(default_factory=dict)

    @property
    def bounding_phase(self) -> Optional[str]:
        """The phase with the most path time (None for an empty path)."""
        if not self.phase_seconds:
            return None
        return max(self.phase_seconds, key=lambda p: self.phase_seconds[p])


def _match_sender_xfer(
    xfers: Dict[Tuple[int, int], List[Span]],
    src: int,
    dst: int,
    tag: Optional[int],
    not_after: float,
) -> Optional[Span]:
    """Latest xfer span src→dst ending at or before ``not_after``;
    prefers an exact tag match when the wait recorded one."""
    candidates = xfers.get((src, dst))
    if not candidates:
        return None
    best = None
    for sp in candidates:
        if sp.end > not_after + _EPS:
            break  # sorted by end
        if tag is not None and sp.attrs.get("tag") != tag:
            continue
        best = sp
    if best is None and tag is not None:
        # Fall back to any-tag matching (e.g. staged transfers).
        return _match_sender_xfer(xfers, src, dst, None, not_after)
    return best


def critical_path(spans: List[Span], elapsed: float) -> CriticalPathResult:
    """Extract the critical path from a span set (see module docstring)."""
    ranked = [s for s in spans if s.rank >= 0 and s.end > s.start]
    if not ranked:
        return CriticalPathResult([], {}, elapsed, 0.0)

    by_rank: Dict[int, List[Span]] = {}
    xfers: Dict[Tuple[int, int], List[Span]] = {}
    for sp in ranked:
        by_rank.setdefault(sp.rank, []).append(sp)
        if sp.cat == "comm" and sp.name == "xfer" and "dst" in sp.attrs:
            xfers.setdefault((sp.rank, int(sp.attrs["dst"])), []).append(sp)
    for lst in by_rank.values():
        lst.sort(key=lambda s: (s.end, s.start))
    rank_ends: Dict[int, List[float]] = {
        r: [s.end for s in lst] for r, lst in by_rank.items()
    }
    for lst in xfers.values():
        lst.sort(key=lambda s: s.end)

    def rank_predecessor(rank: int, not_after: float) -> Optional[Span]:
        lst = by_rank.get(rank)
        if not lst:
            return None
        i = bisect.bisect_right(rank_ends[rank], not_after + _EPS) - 1
        return lst[i] if i >= 0 else None

    cur = max(ranked, key=lambda s: s.end)
    segments: List[PathSegment] = []
    seen = set()
    # Each hop moves to a span ending no later than the current one; the
    # seen-set guards against equal-end ties looping forever.
    while cur is not None and id(cur) not in seen:
        seen.add(id(cur))
        segments.append(PathSegment(cur, phase_of_span(cur), step_of_span(cur)))
        if cur.name == "wait_recv" and "src" in cur.attrs:
            nxt = _match_sender_xfer(
                xfers, int(cur.attrs["src"]), cur.rank,
                cur.attrs.get("tag"), cur.end,
            )
            if nxt is None or id(nxt) in seen:
                nxt = rank_predecessor(cur.rank, cur.start)
        else:
            nxt = rank_predecessor(cur.rank, cur.start)
        cur = nxt

    segments.reverse()

    phase_seconds: Dict[str, float] = {}
    step_bound: Dict[int, Dict[str, float]] = {}
    covered = 0.0
    for seg in segments:
        phase_seconds[seg.phase] = phase_seconds.get(seg.phase, 0.0) + seg.duration
        covered += seg.duration
        if seg.step is not None:
            per = step_bound.setdefault(seg.step, {})
            per[seg.phase] = per.get(seg.phase, 0.0) + seg.duration
    phase_seconds = dict(
        sorted(phase_seconds.items(), key=lambda kv: -kv[1])
    )
    bound = {
        k: max(per, key=lambda p: per[p]) for k, per in sorted(step_bound.items())
    }
    coverage = min(1.0, covered / elapsed) if elapsed > 0 else 0.0
    return CriticalPathResult(segments, phase_seconds, elapsed, coverage, bound)
