"""Model-vs-measured comparison and generic regression deltas.

The analytic model (:mod:`repro.model.perf_model`) prices every
benchmark phase in O(N/B); the trace records what the event engine (or
a real run, for a compatible trace) actually spent.  Joining the two
per phase answers two different questions:

- *calibration*: where does the model diverge from the simulator
  (big deviations = modelling gaps worth fixing), and
- *regression gating*: did a code change move any phase by more than a
  tolerated fraction vs a recorded baseline
  (:func:`regression_deltas`, shared with ``repro bench``'s gate).

Measured per-phase time is the **busiest rank's** total in that phase —
the bulk-synchronous pipeline runs at the slowest rank's pace, which is
what the model's critical-path estimate prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.analysis.loaders import phase_of_span
from repro.obs.tracer import Span

#: measured comm-phase name → model breakdown key
_MODEL_KEY = {
    "getrf": "getrf",
    "trsm": "trsm",
    "cast": "cast",
    "gemm": "gemm",
    "diag_bcast": "diag_bcast",
    "panel_bcast": "exposed_comm",
}


@dataclass
class PhaseDeviation:
    """One phase's measured vs modelled seconds."""

    phase: str
    measured_s: float
    model_s: float

    @property
    def deviation(self) -> Optional[float]:
        """Fractional (measured - model) / model; None when unmodelled."""
        if self.model_s <= 0:
            return None
        return (self.measured_s - self.model_s) / self.model_s


@dataclass
class DeviationReport:
    phases: List[PhaseDeviation]
    measured_total: float
    model_total: float

    @property
    def total_deviation(self) -> Optional[float]:
        if self.model_total <= 0:
            return None
        return (self.measured_total - self.model_total) / self.model_total

    def worst(self) -> Optional[PhaseDeviation]:
        """Phase with the largest absolute deviation (modelled only)."""
        scored = [p for p in self.phases if p.deviation is not None]
        if not scored:
            return None
        return max(scored, key=lambda p: abs(p.deviation))


def measured_phase_seconds(
    spans: List[Span], num_ranks: int
) -> Dict[str, float]:
    """Busiest-rank seconds per phase, from executor + wait spans.

    Executor spans contribute compute phases; ``wait_recv`` spans
    contribute the *exposed* communication their tag decodes to.  Other
    engine waits (send drain, collectives) land in their own buckets.
    """
    per: Dict[str, List[float]] = {}
    for sp in spans:
        if sp.rank < 0 or sp.rank >= num_ranks:
            continue
        if sp.cat not in ("executor", "engine"):
            continue
        phase = phase_of_span(sp)
        per.setdefault(phase, [0.0] * num_ranks)[sp.rank] += sp.end - sp.start
    return {phase: max(times) for phase, times in sorted(per.items())}


def model_vs_measured(
    spans: List[Span],
    cfg,
    elapsed: float,
    num_ranks: int,
) -> DeviationReport:
    """Join busiest-rank measured phase times against the analytic model."""
    from repro.model.perf_model import estimate_run

    est = estimate_run(cfg)
    measured = measured_phase_seconds(spans, num_ranks)

    # Refinement measured time: prefer the driver's phase span; fall
    # back to the busiest rank's IR kernel + wait time.
    driver_ir = [
        sp.end - sp.start
        for sp in spans
        if sp.cat == "driver" and sp.name == "refinement"
    ]
    ir_measured = (
        driver_ir[0]
        if driver_ir
        else measured.get("ir", 0.0) + measured.get("collective", 0.0)
    )

    rows = []
    for phase, key in _MODEL_KEY.items():
        rows.append(PhaseDeviation(
            phase=phase,
            measured_s=measured.get(phase, 0.0),
            model_s=est.breakdown.get(key, 0.0),
        ))
    rows.append(PhaseDeviation(
        phase="refinement",
        measured_s=ir_measured,
        model_s=est.breakdown.get("refinement", 0.0),
    ))
    # Anything measured but unmodelled still shows up (model_s = 0).
    covered = set(_MODEL_KEY) | {"ir", "collective", "refinement"}
    for phase, secs in measured.items():
        if phase not in covered:
            rows.append(PhaseDeviation(phase=phase, measured_s=secs, model_s=0.0))
    rows.sort(key=lambda p: -p.measured_s)
    return DeviationReport(
        phases=rows, measured_total=elapsed, model_total=est.elapsed
    )


# -- generic regression gate ------------------------------------------------

@dataclass
class Regression:
    """One metric's move vs a recorded baseline."""

    name: str
    current_s: float
    baseline_s: float
    regressed: bool

    @property
    def delta(self) -> Optional[float]:
        if self.baseline_s <= 0:
            return None
        return (self.current_s - self.baseline_s) / self.baseline_s


def regression_deltas(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    min_seconds: float = 0.0,
) -> List[Regression]:
    """Compare two name→seconds maps; one entry per shared name.

    A metric *regresses* when it grew by more than ``threshold``
    (fractional) over the baseline.  ``min_seconds`` suppresses noise on
    negligible phases: below that floor nothing regresses.
    """
    rows = []
    for name in sorted(set(current) & set(baseline)):
        cur, base = float(current[name]), float(baseline[name])
        delta = (cur - base) / base if base > 0 else None
        regressed = (
            delta is not None and delta > threshold and cur >= min_seconds
        )
        rows.append(Regression(name, cur, base, regressed))
    rows.sort(key=lambda r: -(r.delta if r.delta is not None else float("-inf")))
    return rows
