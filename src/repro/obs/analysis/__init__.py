"""Trace analytics over the observability layer's spans and metrics.

Everything here is *post-hoc* (or, for :mod:`progress`, streaming)
analysis of what :mod:`repro.obs` recorded:

- :mod:`loaders` — normalize live tracers / Chrome traces / JSONL span
  logs into one :class:`~repro.obs.analysis.loaders.ProfileInput`, and
  map raw span names to benchmark phases;
- :mod:`critical_path` — which phase chain actually bounded wall time;
- :mod:`imbalance` — per-rank utilization, per-phase max/mean spread,
  straggler flagging;
- :mod:`comm_matrix` — bytes/messages per rank pair and per phase;
- :mod:`deviation` — measured vs :mod:`repro.model.perf_model`
  predictions, plus the generic regression-delta gate;
- :mod:`progress` — live per-panel-column GF/s + projected finish;
- :mod:`report` — the combined ``repro profile`` report (text / JSON /
  CSV, schema :data:`~repro.obs.analysis.report.PROFILE_SCHEMA`).
"""

from repro.obs.analysis.comm_matrix import CommMatrix, comm_matrix
from repro.obs.analysis.critical_path import (
    CriticalPathResult,
    PathSegment,
    critical_path,
)
from repro.obs.analysis.deviation import (
    DeviationReport,
    PhaseDeviation,
    Regression,
    measured_phase_seconds,
    model_vs_measured,
    regression_deltas,
)
from repro.obs.analysis.imbalance import (
    ImbalanceReport,
    PhaseImbalance,
    RankLoad,
    load_imbalance,
)
from repro.obs.analysis.loaders import (
    ProfileInput,
    config_from_provenance,
    from_observability,
    from_tracer,
    load_profile_input,
    phase_of_span,
    step_of_span,
)
from repro.obs.analysis.progress import LiveProgressReporter, step_flops
from repro.obs.analysis.report import (
    PROFILE_SCHEMA,
    ProfileReport,
    build_profile,
    compare_profiles,
)

__all__ = [
    "CommMatrix",
    "comm_matrix",
    "CriticalPathResult",
    "PathSegment",
    "critical_path",
    "DeviationReport",
    "PhaseDeviation",
    "Regression",
    "measured_phase_seconds",
    "model_vs_measured",
    "regression_deltas",
    "ImbalanceReport",
    "PhaseImbalance",
    "RankLoad",
    "load_imbalance",
    "ProfileInput",
    "config_from_provenance",
    "from_observability",
    "from_tracer",
    "load_profile_input",
    "phase_of_span",
    "step_of_span",
    "LiveProgressReporter",
    "step_flops",
    "PROFILE_SCHEMA",
    "ProfileReport",
    "build_profile",
    "compare_profiles",
]
