"""Fleet observability: campaign-level analytics over a result store.

Where :mod:`repro.obs.analysis` explains one run and
:mod:`repro.obs.health` watches one run live, the fleet layer explains
a whole *campaign*: :func:`build_fleet` turns a
:class:`~repro.campaign.store.ResultStore` (plus optional per-job
profile/health artifacts) into one ``repro.obs.fleet/v1`` document —
GF/s heatmaps over the sweep axes, best/worst cells with phase
attribution, health and cache rollups, per-worker utilization, and
store-over-store trend gating through the shared
:func:`~repro.obs.analysis.regression_deltas` engine.
:func:`render_campaign_dashboard` is the matching self-contained HTML
page (validated by the same
:func:`~repro.obs.health.validate_self_contained` gate).

Quick start::

    from repro.obs.fleet import build_fleet, render_fleet_text

    doc = build_fleet("benchmarks/results/campaign/store.jsonl")
    print(render_fleet_text(doc))
"""

from repro.obs.fleet.analytics import build_fleet
from repro.obs.fleet.dashboard import render_campaign_dashboard
from repro.obs.fleet.report import (
    FLEET_SCHEMA,
    check_fleet_document,
    render_fleet_csv,
    render_fleet_text,
)

__all__ = [
    "FLEET_SCHEMA",
    "build_fleet",
    "check_fleet_document",
    "render_campaign_dashboard",
    "render_fleet_csv",
    "render_fleet_text",
]
