"""Build one fleet analytics document from a campaign result store.

:func:`build_fleet` is the aggregation core behind ``repro fleet`` and
``repro dashboard --campaign``: it walks every stored result row,
pivots the best-run numbers onto the sweep axes (grid × bcast ×
scenario — the Figs. 4–8 axes of the paper), pulls worker utilization
out of each row's volatile ``meta`` block, folds in optional per-job
profile/health artifacts (``<key>.profile.json`` / ``<key>.health.json``
next to the store or in an explicit artifacts directory), and gates the
store against any number of baseline stores through the *same*
:func:`repro.campaign.store.compare_stores` →
:func:`repro.obs.analysis.regression_deltas` engine every other gate in
the repo uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.store import (
    STORE_SCHEMA,
    ResultStore,
    _scenario_name,
    check_result_row,
    compare_stores,
)
from repro.errors import ConfigurationError
from repro.obs.fleet.report import FLEET_SCHEMA


def build_fleet(
    store: Union[str, Path, ResultStore],
    artifacts: Optional[Union[str, Path]] = None,
    summary: Optional[Union[str, Path, dict]] = None,
    baselines: Sequence[Union[str, Path]] = (),
    max_regress: float = 0.25,
) -> dict:
    """The ``repro.obs.fleet/v1`` document for one result store.

    ``artifacts`` is a directory searched for ``<key>.profile.json``
    and ``<key>.health.json`` companions (defaults to the store's own
    directory); ``summary`` is a ``repro.campaign.summary/v1`` document
    (or path) supplying the cache rollup; each entry of ``baselines``
    becomes one trend series gated at ``max_regress``.
    """
    source, rows, compare_source, default_art_dir = _load_store(store)
    art_dir = (
        Path(artifacts) if artifacts is not None else default_art_dir
    )

    doc: Dict[str, object] = {
        "schema": FLEET_SCHEMA,
        "source": source,
        "store": _store_summary(rows),
        "heatmap": _heatmap(rows),
        "rollup": {
            "health": _health_rollup(rows, art_dir),
            "cache": _cache_rollup(summary),
        },
        "workers": _workers(rows),
    }
    doc["best"], doc["worst"] = _extremes(rows, art_dir)
    trend = []
    any_regressed = False
    for baseline in baselines:
        deltas = compare_stores(
            compare_source, baseline, max_regress=max_regress
        )
        cells = [
            {"name": d.name, "current_s": d.current_s,
             "baseline_s": d.baseline_s, "delta": round(d.delta, 6),
             "regressed": d.regressed}
            for d in deltas
        ]
        regressed = any(c["regressed"] for c in cells)
        any_regressed = any_regressed or regressed
        trend.append({
            "baseline": str(baseline),
            "max_regress": max_regress,
            "cells": cells,
            "regressed": regressed,
        })
    doc["trend"] = trend
    doc["regressed"] = any_regressed
    return doc


# -- loading ----------------------------------------------------------------


def _load_store(store):
    """``(source, rows, compare_source, artifacts_default)`` for a
    ResultStore, a ``.jsonl`` store path, or a store-export ``.json``."""
    if isinstance(store, ResultStore):
        return str(store.path), store.all_rows(), store, store.path.parent
    path = Path(store)
    if path.suffix == ".jsonl":
        rs = ResultStore(path)
        return str(path), rs.all_rows(), rs, path.parent
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot load store export {path}: {exc}")
    if not (isinstance(doc, dict) and doc.get("schema") == STORE_SCHEMA):
        raise ConfigurationError(
            f"{path}: not a campaign store (.jsonl) or {STORE_SCHEMA!r} "
            "export"
        )
    rows = doc.get("rows", [])
    for row in rows:
        problems = check_result_row(row)
        if problems:
            raise ConfigurationError(f"{path}: {problems[0]}")
    return str(path), rows, doc, path.parent


# -- sections ---------------------------------------------------------------


def _store_summary(rows: List[dict]) -> dict:
    machines = sorted({r.get("job", {}).get("machine", "?") for r in rows})
    codes = sorted({str(r.get("code", "?")) for r in rows})
    return {"rows": len(rows), "machines": machines, "code_versions": codes}


def _grid_label(row: dict) -> str:
    g = row.get("job", {}).get("grid")
    return f"{g}x{g}"


def _cell(row: dict) -> dict:
    best = row.get("best", {})
    return {
        "grid": _grid_label(row),
        "bcast": row.get("job", {}).get("bcast", "?"),
        "scenario": _scenario_name(row),
        "key": row.get("key"),
        "label": row.get("label"),
        "elapsed_s": best.get("elapsed_s"),
        "gflops_per_gcd": best.get("gflops_per_gcd"),
        "total_flops_per_s": best.get("total_flops_per_s"),
        "variability": row.get("variability"),
        # consecutive-run trajectory (§VI-B), the sparkline basis
        "run_elapsed_s": [
            r.get("elapsed_s") for r in row.get("runs", [])
            if isinstance(r.get("elapsed_s"), (int, float))
        ],
    }


def _heatmap(rows: List[dict]) -> dict:
    cells = [_cell(r) for r in rows]
    grids = sorted({c["grid"] for c in cells},
                   key=lambda g: int(g.split("x", 1)[0]))
    bcasts = sorted({c["bcast"] for c in cells})
    scenarios = sorted({c["scenario"] for c in cells})
    have = {(c["grid"], c["bcast"], c["scenario"]) for c in cells}
    missing = [
        {"grid": g, "bcast": b, "scenario": s}
        for g in grids for b in bcasts for s in scenarios
        if (g, b, s) not in have
    ]
    return {
        "grids": grids, "bcasts": bcasts, "scenarios": scenarios,
        "cells": cells, "missing": missing,
    }


def _load_artifact(art_dir: Path, key: str, kind: str) -> Optional[dict]:
    """``<key>.<kind>.json`` from the artifacts dir, or None.

    A malformed companion raises: silently dropping a health document
    would turn a real finding into a clean rollup.
    """
    path = art_dir / f"{key}.{kind}.json"
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot load fleet artifact {path}: {exc}"
        )
    return doc if isinstance(doc, dict) else None


def _extremes(rows: List[dict], art_dir: Path):
    """Best/worst cells by GF/s per GCD, with phase attribution."""
    scored = [
        r for r in rows
        if isinstance(r.get("best", {}).get("gflops_per_gcd"), (int, float))
    ]
    if not scored:
        return None, None

    def _attributed(row: dict) -> dict:
        out = {"cell": _cell(row), "phase_seconds": None,
               "bounding_phase": None}
        profile = _load_artifact(art_dir, str(row.get("key")), "profile")
        if profile is not None:
            out["phase_seconds"] = profile.get("phase_seconds")
            out["bounding_phase"] = (
                profile.get("critical_path", {}).get("bounding_phase")
            )
        return out

    ranked = sorted(scored, key=lambda r: r["best"]["gflops_per_gcd"])
    return _attributed(ranked[-1]), _attributed(ranked[0])


def _health_rollup(rows: List[dict], art_dir: Path) -> dict:
    documents = 0
    findings = 0
    by_severity: Dict[str, int] = {}
    by_kind: Dict[str, int] = {}
    unhealthy: List[str] = []
    for row in rows:
        key = str(row.get("key"))
        health = _load_artifact(art_dir, key, "health")
        if health is None:
            continue
        documents += 1
        found = health.get("findings") or []
        findings += len(found)
        for f in found:
            sev = str(f.get("severity", "?"))
            kind = str(f.get("kind", "?"))
            by_severity[sev] = by_severity.get(sev, 0) + 1
            by_kind[kind] = by_kind.get(kind, 0) + 1
        if found or (health.get("watchdog") or {}).get("tripped"):
            unhealthy.append(key)
    return {
        "documents": documents,
        "findings": findings,
        "by_severity": by_severity,
        "by_kind": by_kind,
        "unhealthy_keys": sorted(unhealthy),
    }


def _cache_rollup(summary) -> Optional[dict]:
    if summary is None:
        return None
    if isinstance(summary, (str, Path)):
        try:
            summary = json.loads(Path(summary).read_text())
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot load sweep summary {summary}: {exc}"
            )
    if not isinstance(summary, dict):
        raise ConfigurationError("sweep summary must be a JSON object")
    return {
        "cache_hit_ratio": summary.get("cache_hit_ratio", 0.0),
        "computed": summary.get("computed", 0),
        "cached": summary.get("cached", 0),
        "failed": summary.get("failed", 0),
        "wall_s": summary.get("wall_s", 0.0),
        "workers": summary.get("workers", 1),
    }


def _stat(values: List[float]) -> dict:
    if not values:
        return {"total": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "total": round(sum(values), 6),
        "mean": round(sum(values) / len(values), 6),
        "max": round(max(values), 6),
    }


def _workers(rows: List[dict]) -> dict:
    """Per-worker utilization from row ``meta`` (queue-wait vs run)."""
    per: Dict[str, Dict[str, list]] = {}
    timeline: List[dict] = []
    starts: List[float] = []
    for row in rows:
        meta = row.get("meta") or {}
        worker = meta.get("worker")
        if worker is None:
            pid = meta.get("worker_pid")
            worker = f"pid:{pid}" if pid is not None else None
        if worker is None:
            continue
        worker = str(worker)
        bucket = per.setdefault(worker, {"wait": [], "run": []})
        wait = meta.get("queue_wait_s")
        if isinstance(wait, (int, float)):
            bucket["wait"].append(float(wait))
        wall = meta.get("compute_wall_s")
        if isinstance(wall, (int, float)):
            bucket["run"].append(float(wall))
        start = meta.get("started_unix")
        if isinstance(start, (int, float)) and isinstance(
            wall, (int, float)
        ):
            starts.append(float(start))
            timeline.append({
                "worker": worker,
                "key": row.get("key"),
                "label": row.get("label"),
                "start_unix": float(start),
                "run_s": float(wall),
            })
    t0 = min(starts) if starts else 0.0
    for entry in timeline:
        entry["start_s"] = round(entry.pop("start_unix") - t0, 6)
        entry["end_s"] = round(entry["start_s"] + entry.pop("run_s"), 6)
    timeline.sort(key=lambda e: (e["worker"], e["start_s"]))
    per_worker = [
        {
            "worker": worker,
            "jobs": max(len(b["wait"]), len(b["run"])),
            "queue_wait_s": _stat(b["wait"]),
            "run_s": _stat(b["run"]),
        }
        for worker, b in sorted(per.items())
    ]
    return {
        "jobs": sum(w["jobs"] for w in per_worker),
        "per_worker": per_worker,
        "timeline": timeline,
    }
