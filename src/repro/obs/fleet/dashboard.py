"""Self-contained HTML dashboard for a whole campaign.

:func:`render_campaign_dashboard` is the fleet-level sibling of
:func:`repro.obs.health.dashboard.render_dashboard`: one HTML file,
inline CSS and inline SVG only, renderable on an air-gapped machine and
guarded by the same
:func:`~repro.obs.health.dashboard.validate_self_contained` gate in CI.
It renders a ``repro.obs.fleet/v1`` document (see
:func:`repro.obs.fleet.build_fleet`) — the document alone, so the page
can be rebuilt long after the store and its artifacts moved on.

Panels:

- campaign header (rows, machines, code versions, drift verdict);
- sweep heatmap — one grid × bcast matrix per scenario, cells shaded
  by GF/s per GCD (the Figs. 4–8 pivot);
- run trajectories — per-cell consecutive-run sparklines (§VI-B) plus
  one trend strip per baseline comparison;
- health findings rollup;
- worker Gantt — one strip per pool worker, jobs placed at their
  recorded start/run times from the row ``meta`` blocks.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List

#: workers beyond this many rows are omitted from the Gantt
MAX_GANTT_WORKERS = 32

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 1.2em 2em;
       color: #222; background: #fafafa; }
h1 { font-size: 1.25em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
th { background: #eee; }
.meta span { margin-right: 1.6em; color: #555; }
.meta b { color: #111; }
svg { background: #fff; border: 1px solid #ddd; }
.ok { color: #1e8449; font-weight: 600; }
.bad { color: #c0392b; font-weight: 600; }
"""

_WORKER_COLORS = ("#4e79a7", "#f28e2b", "#59a14f", "#b07aa1", "#76b7b2",
                  "#edc948", "#9c755f", "#e15759")


def render_campaign_dashboard(
    doc: dict, title: str = "repro campaign dashboard"
) -> str:
    """One self-contained HTML page for a fleet analytics document."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        _header_html(doc),
        "<h2>Sweep heatmap (GF/s per GCD)</h2>",
        _heatmaps_html(doc.get("heatmap", {})),
        "<h2>Run trajectories</h2>",
        _trajectories_html(doc.get("heatmap", {})),
    ]
    trend = doc.get("trend") or []
    if trend:
        parts.append("<h2>Trend vs baselines</h2>")
        parts.append(_trend_html(trend))
    parts.append("<h2>Health findings rollup</h2>")
    parts.append(_health_html(doc.get("rollup", {}).get("health", {})))
    parts.append("<h2>Worker utilization</h2>")
    parts.append(_gantt_svg(doc.get("workers", {})))
    parts.append("</body></html>")
    return "\n".join(parts)


# -- building blocks -------------------------------------------------------


def _esc(s) -> str:
    return _html.escape(str(s), quote=True)


def _header_html(doc: dict) -> str:
    store = doc.get("store", {})
    cells = [
        f"<span>rows <b>{store.get('rows', 0)}</b></span>",
        f"<span>machines <b>{_esc(', '.join(store.get('machines', [])))}"
        "</b></span>",
        f"<span>code <b>{_esc(', '.join(store.get('code_versions', [])))}"
        "</b></span>",
        f"<span>source <b>{_esc(doc.get('source', '<store>'))}</b></span>",
    ]
    if doc.get("trend"):
        verdict = (
            '<span class="bad">DRIFT: cell(s) regressed</span>'
            if doc.get("regressed")
            else '<span class="ok">no drift vs baselines</span>'
        )
        cells.append(verdict)
    return f'<p class="meta">{" ".join(cells)}</p>'


def _shade(frac: float) -> str:
    """White → deep blue ramp (same family as the comm heatmap)."""
    frac = max(0.0, min(1.0, frac)) ** 0.5
    return (
        f"rgb({int(255 - 205 * frac)},{int(255 - 155 * frac)},255)"
    )


def _heatmaps_html(heatmap: dict) -> str:
    grids = heatmap.get("grids", [])
    bcasts = heatmap.get("bcasts", [])
    scenarios = heatmap.get("scenarios", [])
    cells = {
        (c["grid"], c["bcast"], c["scenario"]): c
        for c in heatmap.get("cells", [])
    }
    values = [
        c.get("gflops_per_gcd") for c in heatmap.get("cells", [])
        if isinstance(c.get("gflops_per_gcd"), (int, float))
    ]
    if not values or not grids or not bcasts:
        return "<p>no heatmap cells in the store</p>"
    peak = max(values) or 1.0
    cell_w, cell_h, left, top = 84, 26, 64, 24
    out = []
    for scenario in scenarios:
        w = left + len(bcasts) * cell_w + 8
        h = top + len(grids) * cell_h + 10
        rows = [
            f'<text x="4" y="14" font-size="11" fill="#333">'
            f"scenario: {_esc(scenario)}</text>"
        ]
        for j, bcast in enumerate(bcasts):
            rows.append(
                f'<text x="{left + j * cell_w + cell_w / 2:.0f}" y="{top - 6}" '
                f'font-size="10" fill="#777" text-anchor="middle">'
                f"{_esc(bcast)}</text>"
            )
        for i, grid in enumerate(grids):
            y = top + i * cell_h
            rows.append(
                f'<text x="{left - 6}" y="{y + cell_h * 0.7:.0f}" '
                f'font-size="10" fill="#777" text-anchor="end">'
                f"{_esc(grid)}</text>"
            )
            for j, bcast in enumerate(bcasts):
                x = left + j * cell_w
                cell = cells.get((grid, bcast, scenario))
                if cell is None or not isinstance(
                    cell.get("gflops_per_gcd"), (int, float)
                ):
                    rows.append(
                        f'<rect x="{x}" y="{y}" width="{cell_w - 2}" '
                        f'height="{cell_h - 2}" fill="#f0f0f0">'
                        f"<title>{_esc(grid)}/{_esc(bcast)}: no row"
                        "</title></rect>"
                    )
                    continue
                gfs = float(cell["gflops_per_gcd"])
                rows.append(
                    f'<rect x="{x}" y="{y}" width="{cell_w - 2}" '
                    f'height="{cell_h - 2}" fill="{_shade(gfs / peak)}">'
                    f"<title>{_esc(cell.get('label'))}: {gfs:.1f} GF/s "
                    f"per GCD</title></rect>"
                )
                rows.append(
                    f'<text x="{x + (cell_w - 2) / 2:.0f}" '
                    f'y="{y + cell_h * 0.65:.0f}" font-size="10" '
                    f'fill="#222" text-anchor="middle">{gfs:.1f}</text>'
                )
        out.append(
            f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" '
            f'style="margin:0 10px 10px 0">' + "".join(rows) + "</svg>"
        )
    return "\n".join(out)


def _sparkline(values: List[float], w: int = 110, h: int = 26) -> str:
    if len(values) < 2:
        return ""
    v0, v1 = min(values), max(values)
    span = (v1 - v0) or 1.0
    sx = (w - 6) / (len(values) - 1)
    pts = " ".join(
        f"{3 + i * sx:.1f},{h - 4 - (v - v0) / span * (h - 8):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">'
        f'<polyline points="{pts}" fill="none" stroke="#4e79a7" '
        f'stroke-width="1.3"/></svg>'
    )


def _trajectories_html(heatmap: dict) -> str:
    rows = [
        "<table><tr><th>cell</th><th>runs (elapsed s)</th>"
        "<th>trajectory</th><th>variability</th></tr>"
    ]
    drawn = 0
    for cell in heatmap.get("cells", []):
        series = [
            float(v) for v in cell.get("run_elapsed_s") or []
            if isinstance(v, (int, float))
        ]
        spark = _sparkline(series)
        runs = ", ".join(f"{v:.3f}" for v in series) or "-"
        var = cell.get("variability")
        rows.append(
            f"<tr><td>{_esc(cell.get('label'))}</td><td>{runs}</td>"
            f"<td>{spark or '-'}</td>"
            f"<td>{var if var is not None else '-'}</td></tr>"
        )
        drawn += 1
    if not drawn:
        return "<p>no stored runs</p>"
    rows.append("</table>")
    return "".join(rows)


def _trend_html(trend: List[dict]) -> str:
    out = []
    for entry in trend:
        cells = entry.get("cells", [])
        regressed = [c for c in cells if c.get("regressed")]
        cls = "bad" if regressed else "ok"
        out.append(
            f'<p class="{cls}">vs {_esc(entry.get("baseline"))}: '
            f"{len(regressed)}/{len(cells)} cell(s) regressed "
            f"(gate {float(entry.get('max_regress', 0.25)):.0%})</p>"
        )
        if not cells:
            continue
        rows = [
            "<table><tr><th>cell</th><th>baseline (s)</th>"
            "<th>current (s)</th><th>delta</th></tr>"
        ]
        for c in sorted(cells, key=lambda c: -abs(c.get("delta", 0.0))):
            mark = ' class="bad"' if c.get("regressed") else ""
            rows.append(
                f"<tr{mark}><td>{_esc(c.get('name'))}</td>"
                f"<td>{float(c.get('baseline_s', 0.0)):.4f}</td>"
                f"<td>{float(c.get('current_s', 0.0)):.4f}</td>"
                f"<td>{float(c.get('delta', 0.0)):+.1%}</td></tr>"
            )
        rows.append("</table>")
        out.append("".join(rows))
    return "\n".join(out)


def _health_html(health: dict) -> str:
    if not health.get("documents"):
        return "<p>no per-job health artifacts found</p>"
    if not health.get("findings"):
        return (
            f'<p class="ok">{health["documents"]} health document(s), '
            "no findings.</p>"
        )
    rows = [
        f"<p>{health['documents']} document(s), "
        f"<b>{health['findings']}</b> finding(s)</p>",
        "<table><tr><th>axis</th><th>value</th><th>count</th></tr>",
    ]
    for axis, counts in (
        ("severity", health.get("by_severity", {})),
        ("kind", health.get("by_kind", {})),
    ):
        for name, count in sorted(counts.items()):
            rows.append(
                f"<tr><td>{_esc(axis)}</td><td>{_esc(name)}</td>"
                f"<td>{count}</td></tr>"
            )
    rows.append("</table>")
    unhealthy = health.get("unhealthy_keys", [])
    if unhealthy:
        rows.append(
            "<p>unhealthy job(s): <b>"
            + ", ".join(_esc(k) for k in unhealthy) + "</b></p>"
        )
    return "".join(rows)


def _gantt_svg(workers: dict) -> str:
    timeline = workers.get("timeline") or []
    if not timeline:
        return "<p>no worker timing in the store's meta blocks</p>"
    names = sorted({e["worker"] for e in timeline})[:MAX_GANTT_WORKERS]
    row_of: Dict[str, int] = {w: i for i, w in enumerate(names)}
    span = max(e["end_s"] for e in timeline) or 1.0
    row_h, gap, left, width = 18, 5, 120, 860
    height = len(names) * (row_h + gap) + 26
    sx = width / span
    rows: List[str] = []
    for w in names:
        y = row_of[w] * (row_h + gap) + 4
        rows.append(
            f'<text x="4" y="{y + row_h - 5}" font-size="11" '
            f'fill="#555">{_esc(w)}</text>'
        )
    for e in timeline:
        if e["worker"] not in row_of:
            continue
        y = row_of[e["worker"]] * (row_h + gap) + 4
        x = left + e["start_s"] * sx
        wdt = max((e["end_s"] - e["start_s"]) * sx, 1.0)
        color = _WORKER_COLORS[row_of[e["worker"]] % len(_WORKER_COLORS)]
        rows.append(
            f'<rect x="{x:.2f}" y="{y}" width="{wdt:.2f}" '
            f'height="{row_h}" fill="{color}">'
            f"<title>{_esc(e.get('label'))} ({_esc(e.get('key'))}) "
            f"{e['start_s']:.3f}-{e['end_s']:.3f}s</title></rect>"
        )
    axis_y = height - 14
    rows.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + width}" '
        f'y2="{axis_y}" stroke="#999"/>'
    )
    for i in range(5):
        t = span * i / 4
        x = left + t * sx
        rows.append(
            f'<text x="{x:.1f}" y="{height - 2}" font-size="10" '
            f'fill="#777" text-anchor="middle">{t:.3g}s</text>'
        )
    omitted = len({e["worker"] for e in timeline}) - len(names)
    note = (
        f"<p>{omitted} worker(s) beyond the first {MAX_GANTT_WORKERS} "
        "omitted.</p>" if omitted > 0 else ""
    )
    return (
        f'<svg width="{left + width + 8}" height="{height}" '
        f'viewBox="0 0 {left + width + 8} {height}">'
        + "".join(rows) + "</svg>" + note
    )
