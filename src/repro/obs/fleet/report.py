"""The ``repro.obs.fleet/v1`` campaign-analytics document.

One document summarizes one :class:`~repro.campaign.store.ResultStore`
the way a profile report summarizes one run: a per-axis GF/s heatmap
over grid × bcast × scenario, best/worst-cell identification (with
critical-path phase attribution when per-job profile artifacts are
available), health-findings and cache rollups, per-worker utilization
derived from each row's ``meta`` block, and store-over-store trend
series.  :func:`check_fleet_document` is the validation the
``fleet-schema`` lint checker delegates to, and
:func:`render_fleet_text` / :func:`render_fleet_csv` are the terminal
surfaces of ``repro fleet``.
"""

from __future__ import annotations

from typing import List

#: schema tag stamped into every fleet analytics document
FLEET_SCHEMA = "repro.obs.fleet/v1"

#: the heatmap cell fields every cell must carry
_CELL_FIELDS = ("grid", "bcast", "scenario", "key", "label", "elapsed_s",
                "gflops_per_gcd", "total_flops_per_s")


def check_fleet_document(doc) -> List[str]:
    """Problem strings for one fleet document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"fleet document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != FLEET_SCHEMA:
        problems.append(
            f"schema must be {FLEET_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    heatmap = doc.get("heatmap")
    if not isinstance(heatmap, dict):
        problems.append("'heatmap' section is missing")
    else:
        for axis in ("grids", "bcasts", "scenarios"):
            if not isinstance(heatmap.get(axis), list):
                problems.append(f"heatmap.{axis} must be a list")
        cells = heatmap.get("cells")
        if not isinstance(cells, list):
            problems.append("heatmap.cells must be a list")
        else:
            for i, cell in enumerate(cells):
                if not isinstance(cell, dict):
                    problems.append(f"heatmap.cells[{i}] must be an object")
                    continue
                missing = [f for f in _CELL_FIELDS if f not in cell]
                if missing:
                    problems.append(
                        f"heatmap.cells[{i}] missing field(s): "
                        + ", ".join(missing)
                    )
        if not isinstance(heatmap.get("missing"), list):
            problems.append("heatmap.missing must be a list")
    for section in ("best", "worst"):
        sec = doc.get(section)
        if sec is not None and not isinstance(sec, dict):
            problems.append(f"'{section}' must be an object or null")
    rollup = doc.get("rollup")
    if not isinstance(rollup, dict):
        problems.append("'rollup' section is missing")
    elif not isinstance(rollup.get("health"), dict):
        problems.append("rollup.health must be an object")
    workers = doc.get("workers")
    if not isinstance(workers, dict):
        problems.append("'workers' section is missing")
    elif not isinstance(workers.get("per_worker"), list):
        problems.append("workers.per_worker must be a list")
    trend = doc.get("trend")
    if not isinstance(trend, list):
        problems.append("'trend' must be a list")
    else:
        for i, entry in enumerate(trend):
            if not isinstance(entry, dict) or "baseline" not in entry:
                problems.append(f"trend[{i}] must name its 'baseline'")
    if not isinstance(doc.get("regressed"), bool):
        problems.append("'regressed' must be a boolean")
    return problems


def render_fleet_text(doc: dict) -> str:
    """Terminal report: heatmaps, extremes, workers, rollups, trend."""
    from repro.util.format import format_flops, render_table

    blocks: List[str] = []
    store = doc.get("store", {})
    blocks.append(
        "fleet report\n"
        f"  source       : {doc.get('source', '<store>')}\n"
        f"  rows         : {store.get('rows', 0)}\n"
        f"  machines     : {', '.join(store.get('machines', [])) or '-'}\n"
        f"  code         : {', '.join(store.get('code_versions', [])) or '-'}"
    )
    heatmap = doc.get("heatmap", {})
    cells = {
        (c["grid"], c["bcast"], c["scenario"]): c
        for c in heatmap.get("cells", [])
    }
    for scenario in heatmap.get("scenarios", []):
        rows = []
        for grid in heatmap.get("grids", []):
            row = [grid]
            for bcast in heatmap.get("bcasts", []):
                cell = cells.get((grid, bcast, scenario))
                row.append(
                    f"{cell['gflops_per_gcd']:.1f}" if cell else "-"
                )
            rows.append(row)
        blocks.append(render_table(
            ["grid"] + list(heatmap.get("bcasts", [])), rows,
            title=f"GF/s per GCD — scenario: {scenario}",
        ))
    for name in ("best", "worst"):
        sec = doc.get(name)
        if not sec or not sec.get("cell"):
            continue
        cell = sec["cell"]
        line = (
            f"{name:5s} cell    : {cell.get('label', '?')} "
            f"({cell.get('gflops_per_gcd', 0.0):.1f} GF/s per GCD, "
            f"{format_flops(cell.get('total_flops_per_s', 0.0))})"
        )
        if sec.get("bounding_phase"):
            line += f"\n  bound by     : {sec['bounding_phase']}"
        phases = sec.get("phase_seconds") or {}
        if phases:
            top = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
            line += "\n  top phases   : " + ", ".join(
                f"{p} {s:.4f}s" for p, s in top
            )
        blocks.append(line)
    workers = doc.get("workers", {})
    per_worker = workers.get("per_worker", [])
    if per_worker:
        rows = [
            [w["worker"], w["jobs"],
             f"{w['queue_wait_s']['mean']:.4f}",
             f"{w['queue_wait_s']['max']:.4f}",
             f"{w['run_s']['mean']:.4f}",
             f"{w['run_s']['total']:.4f}"]
            for w in per_worker
        ]
        blocks.append(render_table(
            ["worker", "jobs", "wait mean (s)", "wait max (s)",
             "run mean (s)", "run total (s)"],
            rows, title="worker utilization",
        ))
    rollup = doc.get("rollup", {})
    health = rollup.get("health", {})
    sev = health.get("by_severity", {})
    blocks.append(
        "health rollup\n"
        f"  documents    : {health.get('documents', 0)}\n"
        f"  findings     : {health.get('findings', 0)}"
        + (
            " (" + ", ".join(f"{k}: {v}" for k, v in sorted(sev.items()))
            + ")" if sev else ""
        )
    )
    cache = rollup.get("cache")
    if cache:
        blocks.append(
            "cache rollup\n"
            f"  hit ratio    : {cache.get('cache_hit_ratio', 0.0):.2%}\n"
            f"  computed     : {cache.get('computed', 0)}\n"
            f"  cached       : {cache.get('cached', 0)}"
        )
    for entry in doc.get("trend", []):
        regressed = [c for c in entry.get("cells", []) if c.get("regressed")]
        blocks.append(
            f"trend vs {entry.get('baseline')}: "
            f"{len(entry.get('cells', []))} cell(s), "
            f"{len(regressed)} regressed"
            + (
                "\n" + "\n".join(
                    f"  REGRESSED {c['name']}: {c['baseline_s']:.4f}s → "
                    f"{c['current_s']:.4f}s (+{c['delta']:.1%})"
                    for c in regressed
                ) if regressed else ""
            )
        )
    missing = heatmap.get("missing", [])
    if missing:
        blocks.append(
            f"note: {len(missing)} axis combination(s) have no stored row"
        )
    return "\n\n".join(blocks)


def render_fleet_csv(doc: dict) -> str:
    """One CSV row per heatmap cell (spreadsheet surface)."""
    import csv
    import io

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([
        "grid", "bcast", "scenario", "key", "label", "elapsed_s",
        "gflops_per_gcd", "total_flops_per_s", "variability",
    ])
    for cell in doc.get("heatmap", {}).get("cells", []):
        writer.writerow([
            cell.get("grid"), cell.get("bcast"), cell.get("scenario"),
            cell.get("key"), cell.get("label"), cell.get("elapsed_s"),
            cell.get("gflops_per_gcd"), cell.get("total_flops_per_s"),
            cell.get("variability"),
        ])
    return buf.getvalue()
