"""Run-provenance capture: *what* produced a recording, exactly.

The paper's monitoring workflow compares every run against "previously
recorded data" — which only works when a recording says precisely which
configuration, machine model, package version and seeds produced it.
:func:`run_provenance` captures all of that as a plain JSON-able dict;
the driver stamps it onto every :class:`~repro.core.driver.RunResult`
and :func:`repro.core.report.run_report` carries it into the report, so
two campaign records are comparable (or visibly not).
"""

from __future__ import annotations

import platform
import socket
import sys
from datetime import datetime, timezone
from typing import Optional

from repro._version import __version__

#: bump when the provenance block's layout changes
PROVENANCE_SCHEMA = 1


def code_version() -> str:
    """Code-version token mixed into content-addressed run-cache keys.

    A cached campaign result is only reusable while the code that
    produced it still produces the same numbers, so the run cache
    (:mod:`repro.campaign.cache`) keys every entry by config hash *and*
    this token.  It is the package version plus the provenance schema;
    the ``REPRO_CODE_VERSION`` environment variable overrides it, which
    is how tests (and local development on an unreleased version) force
    cache invalidation without bumping ``repro._version``.
    """
    import os

    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    return f"repro-{__version__}+prov{PROVENANCE_SCHEMA}"


def run_provenance(cfg=None, extra: Optional[dict] = None) -> dict:
    """Provenance block for one run.

    Parameters
    ----------
    cfg:
        Optional :class:`~repro.core.config.BenchmarkConfig`; when given
        its ``describe()`` facts, machine name and RNG seed are included.
    extra:
        Caller-supplied facts (campaign id, run index, ...) merged under
        the ``"extra"`` key.
    """
    prov: dict = {
        "schema": PROVENANCE_SCHEMA,
        "package": "repro",
        "version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
        "argv": list(sys.argv),
    }
    try:
        import numpy

        prov["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        prov["numpy"] = None
    if cfg is not None:
        prov["config"] = cfg.describe()
        prov["machine"] = cfg.machine.name
        prov["seed"] = cfg.seed
        prov["panel_precision"] = cfg.panel_precision
        prov["refinement_solver"] = cfg.refinement_solver
    if extra:
        prov["extra"] = dict(extra)
    return prov


def same_experiment(a: dict, b: dict) -> bool:
    """True when two provenance blocks describe the same experiment.

    "Same experiment" means identical configuration, machine and seed —
    the precondition for the watchdog's recorded-data comparison;
    version/host/timestamp may differ (that is what campaigns vary).
    """
    keys = ("config", "machine", "seed", "panel_precision",
            "refinement_solver")
    return all(a.get(k) == b.get(k) for k in keys)
