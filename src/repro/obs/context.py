"""The process-wide observability handle.

Instrumentation points throughout the package (engine, executors, comm
facade, driver, monitor) fetch the current :class:`Observability` via
:func:`current` and bail out on a single ``enabled`` check.  The module
default is a disabled handle, so an uninstrumented run pays one
attribute read per potential telemetry point and allocates nothing.

Enable telemetry for a block of code with :func:`use`::

    from repro.obs import Observability, use

    obs = Observability()
    with use(obs):
        simulate_run(cfg)
    print(obs.tracer.categories())

or install it process-wide with :func:`set_current`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer


class Observability:
    """One tracer + one metrics registry + the enabled switch.

    Parameters
    ----------
    enabled:
        When False every emission helper is a no-op; the disabled
        module-default handle is how instrumentation stays ~free.
    capacity:
        Optional span-ring bound forwarded to :class:`SpanTracer`.
    health:
        Optional :class:`~repro.obs.health.HealthMonitor`; when set,
        the engine samples itself into the monitor's time series and
        the driver arms its watchdog and attaches the final
        :class:`~repro.obs.health.HealthReport` to the run result.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: Optional[int] = None,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        health=None,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else SpanTracer(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: provenance of the most recent observed run (set by the driver)
        self.provenance: Optional[dict] = None
        #: optional run health monitor (sampler + detectors + watchdog)
        self.health = health

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    # -- convenience exports ----------------------------------------------

    def export_chrome_trace(self, path, **kwargs):
        """Write the collected spans as Chrome/Perfetto trace JSON."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(path, self, **kwargs)

    def export_jsonl(self, path, **kwargs):
        """Write the collected spans as JSONL (one span per line)."""
        from repro.obs.export import write_jsonl

        return write_jsonl(path, self.tracer, **kwargs)

    def metrics_text(self) -> str:
        """Prometheus-style flat text dump of the metrics registry."""
        from repro.obs.export import to_prometheus_text

        return to_prometheus_text(self.metrics)

    def clear(self) -> None:
        """Drop collected spans/metrics (keeps enabled state)."""
        self.tracer.clear()
        self.metrics = MetricsRegistry()
        self.provenance = None


#: the module default: disabled, shared, never replaced (so `current()`
#: is safe to call before any setup)
_DISABLED = Observability.disabled()
_current: Observability = _DISABLED


def current() -> Observability:
    """The active process-wide handle (disabled no-op by default)."""
    return _current


def set_current(obs: Optional[Observability]) -> Observability:
    """Install ``obs`` process-wide; ``None`` restores the disabled
    default.  Returns the previously active handle."""
    global _current
    prev = _current
    _current = obs if obs is not None else _DISABLED
    return prev


@contextmanager
def use(obs: Observability):
    """Scoped installation: ``with use(obs): ...`` then restore."""
    prev = set_current(obs)
    try:
        yield obs
    finally:
        set_current(prev)
