"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the telemetry stream (spans are the
temporal half): monotonically increasing counters (bytes broadcast per
ring variant, kernel invocations), point-in-time gauges (GFLOP/s of the
last run, wait-time fraction) and histograms with *fixed* bucket
boundaries so per-rank (or per-run) histograms can be merged exactly —
the property cross-campaign comparison needs.

Instruments are identified by ``name`` plus optional ``labels``; the
same (name, labels) pair always returns the same instrument, so emitters
never need to share object references.  ``snapshot()`` produces a plain
JSON-able dict and ``merge()`` folds another registry (or snapshot) in —
the cross-rank aggregation path.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets: decades with 1/2/5 steps, seconds-flavoured
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, bytes, iterations)."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; got increment {amount}"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-able state dump."""
        return {"value": self.value}

    def merge(self, snap: dict) -> None:
        """Fold another counter's snapshot in (sums the values)."""
        self.value += snap["value"]


class Gauge:
    """Last-written value (a level, not an accumulation)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0
        self._written = False

    def set(self, value: float) -> None:
        """Record the current level, replacing any previous value."""
        self.value = float(value)
        self._written = True

    def snapshot(self) -> dict:
        """JSON-able state dump."""
        return {"value": self.value}

    def merge(self, snap: dict) -> None:
        """Fold another gauge's snapshot in.  Gauges have no meaningful
        sum; the incoming side wins, matching "newest recording"."""
        self.value = snap["value"]
        self._written = True


class Histogram:
    """Fixed-boundary histogram (cumulative-style buckets).

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``
    (non-cumulative storage; exporters cumulate);  one overflow bucket
    counts the rest.  Because boundaries are fixed at construction,
    histograms from different ranks/runs merge exactly.
    """

    kind = "histogram"

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                "histogram boundaries must be non-empty and strictly "
                f"increasing, got {bounds}"
            )
        self.boundaries = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample into its bucket and the running stats."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (upper bucket boundary that covers it)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.bucket_counts):
            seen += c
            if seen >= target:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        """JSON-able state dump (boundaries, buckets, running stats)."""
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, snap: dict) -> None:
        """Fold another histogram's snapshot in.  Exact because the
        boundaries are fixed; mismatched boundaries are an error."""
        if tuple(snap["boundaries"]) != self.boundaries:
            raise ConfigurationError(
                "cannot merge histograms with different boundaries"
            )
        self.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, snap["bucket_counts"])
        ]
        self.count += snap["count"]
        self.sum += snap["sum"]
        if snap.get("min") is not None:
            self.min = min(self.min, snap["min"])
        if snap.get("max") is not None:
            self.max = max(self.max, snap["max"])


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name + labels → instrument, with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    # -- get-or-create -----------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(**kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter registered under (name, labels)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge registered under (name, labels)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram registered under (name, labels).

        ``boundaries`` only takes effect on first creation; later calls
        return the existing instrument unchanged.
        """
        kwargs = {}
        if boundaries is not None:
            kwargs["boundaries"] = boundaries
        return self._get(Histogram, name, labels, **kwargs)

    # -- aggregation -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument."""
        out: dict = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            series = out.setdefault(name, {"kind": inst.kind, "series": []})
            series["series"].append(
                {"labels": dict(labels), **inst.snapshot()}
            )
        return out

    def merge(self, other: "Union[MetricsRegistry, dict]") -> None:
        """Fold another registry (or a snapshot of one) into this one."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, entry in snap.items():
            kind = entry["kind"]
            for series in entry["series"]:
                labels = dict(series["labels"])
                if kind == "counter":
                    inst: Instrument = self.counter(name, **labels)
                elif kind == "gauge":
                    inst = self.gauge(name, **labels)
                elif kind == "histogram":
                    inst = self.histogram(
                        name, boundaries=series["boundaries"], **labels
                    )
                else:
                    raise ConfigurationError(
                        f"unknown instrument kind {kind!r} in snapshot"
                    )
                inst.merge(series)

    def rows(self) -> List[dict]:
        """Flat table rows (name, labels, kind, value/count/mean) for
        terminal rendering."""
        rows = []
        for (name, labels), inst in sorted(self._instruments.items()):
            label_s = ",".join(f"{k}={v}" for k, v in labels)
            if isinstance(inst, Histogram):
                rows.append({
                    "metric": name, "labels": label_s, "kind": inst.kind,
                    "value": inst.mean, "count": inst.count,
                })
            else:
                rows.append({
                    "metric": name, "labels": label_s, "kind": inst.kind,
                    "value": inst.value, "count": "",
                })
        return rows
