"""Lightweight span tracer: the package's common telemetry event.

A :class:`Span` is one closed interval of work attributed to a rank and
a category (the layer that emitted it: ``engine``, ``executor``,
``comm``, ``driver``, ...).  Times are *virtual seconds* when the spans
come from the event engine and wall seconds when they come from real
code; the tracer does not care — it only requires ``end >= start``.

Three emission styles are supported:

- :meth:`SpanTracer.add` — record a finished span with explicit times
  (what the engine uses: it already knows both clock values);
- :meth:`SpanTracer.start` / :meth:`SpanTracer.end` — open/close API for
  code that discovers the end time later;
- :meth:`SpanTracer.span` — a context manager reading a clock callable
  (defaults to :func:`time.perf_counter`), with nesting tracked so child
  spans carry their parent's id.

Memory is bounded with ``capacity``: the tracer becomes a ring that
evicts the oldest spans and counts :attr:`SpanTracer.dropped` — the
"don't let telemetry OOM the run" option for large simulations.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: the (rank, start, end, kind) tuple consumed by the legacy Gantt tools
TimelineSpan = Tuple[int, float, float, str]


@dataclass
class Span:
    """One closed interval of attributed work."""

    name: str
    cat: str
    start: float
    end: float
    rank: int = -1
    attrs: Dict[str, Any] = field(default_factory=dict)
    parent: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_timeline(self) -> TimelineSpan:
        """The legacy ``(rank, start, end, kind)`` tuple."""
        return (self.rank, self.start, self.end, self.name)


class _OpenSpan:
    __slots__ = ("name", "cat", "rank", "start", "attrs", "parent")

    def __init__(self, name, cat, rank, start, attrs, parent) -> None:
        self.name = name
        self.cat = cat
        self.rank = rank
        self.start = start
        self.attrs = attrs
        self.parent = parent


class SpanTracer:
    """Collects spans, optionally into a bounded ring.

    Parameters
    ----------
    capacity:
        ``None`` keeps every span; a positive int keeps only the newest
        ``capacity`` spans and counts evictions in :attr:`dropped`.
    clock:
        Default clock for :meth:`span` / :meth:`start` when no explicit
        time is given.  Engine-side emitters always pass explicit
        virtual times, so the default (:func:`time.perf_counter`) only
        matters for real-world instrumentation.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"tracer capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        self.clock = clock
        self._spans: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._open: Dict[int, _OpenSpan] = {}
        self._next_token = 1
        #: per-thread-of-control nesting stack (token ids)
        self._stack: List[int] = []

    # -- recording ---------------------------------------------------------

    def add(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        rank: int = -1,
        attrs: Optional[Dict[str, Any]] = None,
        parent: Optional[int] = None,
    ) -> None:
        """Record a finished span with explicit times."""
        if end < start:
            raise ConfigurationError(
                f"span {name!r} ends ({end}) before it starts ({start})"
            )
        if self.capacity is not None and len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(
            Span(name, cat, start, end, rank, attrs or {}, parent)
        )

    def start(
        self,
        name: str,
        cat: str,
        rank: int = -1,
        at: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Open a span; returns a token for :meth:`end`."""
        token = self._next_token
        self._next_token += 1
        parent = self._stack[-1] if self._stack else None
        t = at if at is not None else self.clock()
        self._open[token] = _OpenSpan(name, cat, rank, t, attrs, parent)
        self._stack.append(token)
        return token

    def end(self, token: int, at: Optional[float] = None) -> Span:
        """Close a previously started span and record it."""
        open_span = self._open.pop(token, None)
        if open_span is None:
            raise ConfigurationError(f"unknown or already-ended span token {token}")
        if token in self._stack:
            self._stack.remove(token)
        t = at if at is not None else self.clock()
        self.add(
            open_span.name,
            open_span.cat,
            open_span.start,
            max(t, open_span.start),
            open_span.rank,
            open_span.attrs,
            open_span.parent,
        )
        return self._spans[-1]

    def span(self, name: str, cat: str, rank: int = -1, **attrs: Any):
        """Context manager recording one span around a code block."""
        return _SpanContext(self, name, cat, rank, attrs)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def categories(self) -> Dict[str, int]:
        """Span count per category."""
        out: Dict[str, int] = {}
        for s in self._spans:
            out[s.cat] = out.get(s.cat, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all spans (including open ones) and reset the counters."""
        self._spans.clear()
        self._open.clear()
        self._stack.clear()
        self.dropped = 0

    def merge(self, other: "SpanTracer | Iterable[Span]") -> None:
        """Fold another tracer's (or iterable's) spans into this one."""
        for s in other:
            if self.capacity is not None and len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(s)

    # -- adapters ----------------------------------------------------------

    def as_timeline(
        self, cats: Optional[Iterable[str]] = None
    ) -> List[TimelineSpan]:
        """Legacy ``(rank, start, end, kind)`` tuples for the Gantt tools.

        ``cats`` restricts to the given categories (default: everything
        attributed to a real rank, i.e. ``rank >= 0``).
        """
        allow = set(cats) if cats is not None else None
        return [
            s.as_timeline()
            for s in self._spans
            if s.rank >= 0 and (allow is None or s.cat in allow)
        ]

    def total_by_name(self) -> Dict[str, float]:
        """Summed duration per span name (all ranks)."""
        out: Dict[str, float] = {}
        for s in self._spans:
            out[s.name] = out.get(s.name, 0.0) + s.duration
        return out


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_rank", "_attrs", "_token")

    def __init__(self, tracer, name, cat, rank, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._rank = rank
        self._attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self._token = self._tracer.start(
            self._name, self._cat, self._rank, **self._attrs
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end(self._token)
