"""Online anomaly detectors over the health sampler's time series.

Each detector is fed the :class:`~repro.obs.health.series.SeriesBank`
after every sampling tick and returns zero or more
:class:`HealthEvent` findings.  All detectors share three design rules
that keep them usable *online*:

- **rolling-median baselines** — a rank is anomalous relative to its
  peers *right now*, not relative to an absolute threshold, which is
  exactly the paper's slow-GCD methodology (the mini-benchmark
  aggregator flags probes above the fleet median;
  :func:`repro.tools.slownode.flag_outliers` is the shared math);
- **patience** — a finding must persist for ``patience`` consecutive
  samples before an event is emitted, so single-sample transients
  (barrier waves, warm-up columns) do not page anyone;
- **dedupe** — one event per (kind, rank set) while the condition
  holds; the event stream records onsets, not a siren.

The four signatures:

=================== =====================================================
straggler_drift     one rank's busy-seconds-per-virtual-second rises
                    above the fleet median (a slow GCD computes *longer*
                    for the same work while its peers wait)
throughput_collapse the global progress-rate series falls to a small
                    fraction of its rolling median (warm-up collapse,
                    Fig. 12's bad runs)
comm_stall          bytes are in flight but no step completes and no
                    compute lands for several samples
limplock            a rank's completed-step count falls ever further
                    behind the fleet median while the rank still
                    computes — degraded, not dead (the limplock
                    literature's defining signature)
=================== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.health.series import SeriesBank
from repro.tools.slownode import flag_outliers

#: ignore rate medians below this (idle phases have no meaningful peers)
_MIN_RATE = 1e-12


@dataclass(frozen=True)
class HealthEvent:
    """One structured health finding (also emitted as a trace span)."""

    kind: str
    #: virtual time of the onset (the sample that confirmed the finding)
    t: float
    severity: str
    #: ranks implicated (empty tuple = run-global finding)
    ranks: Tuple[int, ...]
    message: str
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able finding (the health report's ``findings`` entry)."""
        return {
            "kind": self.kind,
            "t_s": self.t,
            "severity": self.severity,
            "ranks": list(self.ranks),
            "message": self.message,
            "attrs": dict(self.attrs),
        }


class Detector:
    """Base class: subclasses implement :meth:`update`."""

    kind = "health"

    def update(self, bank: SeriesBank, t: float) -> List[HealthEvent]:
        """Inspect the bank after a sampling tick; return new events."""
        raise NotImplementedError


def _check_patience(patience: int) -> int:
    if patience < 1:
        raise ConfigurationError(
            f"patience must be >= 1 sample, got {patience}"
        )
    return patience


class StragglerDriftDetector(Detector):
    """Rolling-median busy-rate outlier detection (slow-GCD drift).

    In a bulk-synchronous run a slow rank shows up as the rank whose
    *busy* seconds accumulate fastest per virtual second — its kernels
    take longer for the same work while everyone else converts the gap
    into wait time.  Per sample, each rank's busy-rate over the last
    ``window`` samples is compared to the fleet median with the same
    ``median * (1 + threshold)`` cutoff as the slow-node scan
    (:func:`~repro.tools.slownode.flag_outliers`).
    """

    kind = "straggler_drift"

    def __init__(
        self,
        threshold: float = 0.3,
        window: int = 8,
        patience: int = 3,
    ) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError(
                f"threshold must be in (0, 1), got {threshold}"
            )
        self.threshold = threshold
        self.window = max(1, int(window))
        self.patience = _check_patience(patience)
        self._streak: Dict[int, int] = {}
        self._clear_streak: Dict[int, int] = {}
        self._flagged: set = set()

    def update(self, bank: SeriesBank, t: float) -> List[HealthEvent]:
        per_rank = bank.rank_series("busy_s")
        if len(per_rank) < 2:
            return []
        ranks = sorted(per_rank)
        rates = [per_rank[r].rate(self.window) for r in ranks]
        if any(r is None for r in rates):
            return []
        slow_idx, median, _cutoff = flag_outliers(rates, self.threshold)
        if median <= _MIN_RATE:
            # Idle window (barrier, drained queue): no meaningful peers.
            return []
        slow_ranks = {ranks[i] for i in slow_idx}
        events: List[HealthEvent] = []
        for i, rank in enumerate(ranks):
            if rank in slow_ranks:
                self._streak[rank] = self._streak.get(rank, 0) + 1
                self._clear_streak[rank] = 0
                if (
                    self._streak[rank] >= self.patience
                    and rank not in self._flagged
                ):
                    self._flagged.add(rank)
                    drift = rates[i] / median
                    events.append(HealthEvent(
                        kind=self.kind,
                        t=t,
                        severity="warning",
                        ranks=(rank,),
                        message=(
                            f"rank {rank} busy-rate drifted to "
                            f"{drift:.2f}x the fleet median over "
                            f"{self.patience} samples "
                            f"(threshold {1 + self.threshold:.2f}x)"
                        ),
                        attrs={
                            "drift": round(drift, 4),
                            "rate": rates[i],
                            "median_rate": median,
                            "window": self.window,
                        },
                    ))
            else:
                self._streak[rank] = 0
                # Exit hysteresis: the busy-rate of a genuinely slow
                # rank dips under the cutoff during bulk-sync waits;
                # only unflag after a sustained clean stretch so one
                # fault is one onset event, not a siren.
                if rank in self._flagged:
                    clear = self._clear_streak.get(rank, 0) + 1
                    self._clear_streak[rank] = clear
                    if clear >= 4 * self.patience:
                        self._flagged.discard(rank)
                        self._clear_streak[rank] = 0
        return events


class ThroughputCollapseDetector(Detector):
    """Global progress-rate collapse against its own rolling median.

    Watches one run-global series (simulated GF/s by default) and fires
    when the recent value drops below ``fraction`` of the rolling
    median of the earlier samples for ``patience`` consecutive ticks.
    """

    kind = "throughput_collapse"

    def __init__(
        self,
        series: str = "gflops",
        fraction: float = 0.25,
        min_history: int = 8,
        patience: int = 3,
    ) -> None:
        if not 0 < fraction < 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1), got {fraction}"
            )
        self.series = series
        self.fraction = fraction
        self.min_history = max(2, int(min_history))
        self.patience = _check_patience(patience)
        self._streak = 0
        self._active = False

    def update(self, bank: SeriesBank, t: float) -> List[HealthEvent]:
        s = bank.series(self.series)
        if len(s) < self.min_history + 1:
            return []
        values = s.values()
        history = sorted(values[:-1])
        median = history[len(history) // 2]
        current = values[-1]
        if median <= _MIN_RATE:
            return []
        if current < self.fraction * median:
            self._streak += 1
        else:
            self._streak = 0
            self._active = False
            return []
        if self._streak >= self.patience and not self._active:
            self._active = True
            return [HealthEvent(
                kind=self.kind,
                t=t,
                severity="critical",
                ranks=(),
                message=(
                    f"{self.series} collapsed to {current:.3g} "
                    f"(< {self.fraction:.0%} of rolling median "
                    f"{median:.3g}) for {self.patience} samples"
                ),
                attrs={
                    "series": self.series,
                    "current": current,
                    "median": median,
                    "fraction": self.fraction,
                },
            )]
        return []


class CommStallDetector(Detector):
    """Messages in flight, nobody computing, no step completing.

    The difference from a straggler: *every* rank is stuck.  The
    difference from end-of-run deadlock diagnosis: this fires online,
    while the run is still (virtually) ticking — e.g. a fabric
    degradation that slows transfers by orders of magnitude rather
    than dropping them.
    """

    kind = "comm_stall"

    def __init__(self, patience: int = 4) -> None:
        self.patience = _check_patience(patience)
        self._streak = 0
        self._active = False

    def update(self, bank: SeriesBank, t: float) -> List[HealthEvent]:
        inflight = bank.series("bytes_in_flight")
        steps = bank.series("steps_min")
        if len(inflight) < 2 or len(steps) < 2:
            return []
        stalled = (
            inflight.last[1] > 0
            and steps[-1][1] <= steps[-2][1]
            and _total_busy_rate(bank) <= _MIN_RATE
        )
        if not stalled:
            self._streak = 0
            self._active = False
            return []
        self._streak += 1
        if self._streak >= self.patience and not self._active:
            self._active = True
            return [HealthEvent(
                kind=self.kind,
                t=t,
                severity="critical",
                ranks=(),
                message=(
                    f"{int(inflight.last[1])} bytes in flight with no "
                    f"compute and no step completion for "
                    f"{self.patience} samples"
                ),
                attrs={
                    "bytes_in_flight": inflight.last[1],
                    "steps_done": steps.last[1],
                },
            )]
        return []


class LimplockDetector(Detector):
    """A degraded-but-not-dead rank: behind the fleet, still computing.

    A crashed rank stops accumulating busy time; a *limplocked* rank
    keeps computing yet falls ever further behind the fleet's completed
    step count — the signature that cascades in bulk-synchronous codes
    because every collective waits for the limper.
    """

    kind = "limplock"

    def __init__(
        self,
        lag_steps: int = 2,
        window: int = 4,
        patience: int = 3,
    ) -> None:
        if lag_steps < 1:
            raise ConfigurationError(
                f"lag_steps must be >= 1, got {lag_steps}"
            )
        self.lag_steps = lag_steps
        self.window = max(1, int(window))
        self.patience = _check_patience(patience)
        self._streak: Dict[int, int] = {}
        self._clear_streak: Dict[int, int] = {}
        self._flagged: set = set()

    def update(self, bank: SeriesBank, t: float) -> List[HealthEvent]:
        per_rank_steps = bank.rank_series("steps")
        per_rank_busy = bank.rank_series("busy_s")
        if len(per_rank_steps) < 2:
            return []
        ranks = sorted(per_rank_steps)
        steps_now = [per_rank_steps[r].last[1] for r in ranks]
        ordered = sorted(steps_now)
        median = ordered[len(ordered) // 2]
        events: List[HealthEvent] = []
        for i, rank in enumerate(ranks):
            busy = per_rank_busy.get(rank)
            lag = median - steps_now[i]
            limping = (
                lag >= self.lag_steps
                and busy is not None
                and (busy.rate(self.window) or 0.0) > _MIN_RATE
            )
            if limping:
                self._streak[rank] = self._streak.get(rank, 0) + 1
                self._clear_streak[rank] = 0
                if (
                    self._streak[rank] >= self.patience
                    and rank not in self._flagged
                ):
                    self._flagged.add(rank)
                    events.append(HealthEvent(
                        kind=self.kind,
                        t=t,
                        severity="critical",
                        ranks=(rank,),
                        message=(
                            f"rank {rank} limping: {int(lag)} step(s) "
                            f"behind the fleet median while still "
                            f"computing ({self.patience} samples)"
                        ),
                        attrs={
                            "lag_steps": int(lag),
                            "steps_done": int(steps_now[i]),
                            "median_steps": int(median),
                        },
                    ))
            else:
                self._streak[rank] = 0
                if rank in self._flagged:
                    clear = self._clear_streak.get(rank, 0) + 1
                    self._clear_streak[rank] = clear
                    if clear >= 4 * self.patience:
                        self._flagged.discard(rank)
                        self._clear_streak[rank] = 0
        return events


def _total_busy_rate(bank: SeriesBank) -> float:
    """Sum of all ranks' recent busy-rates (0.0 when unknown)."""
    total = 0.0
    for s in bank.rank_series("busy_s").values():
        total += s.rate(1) or 0.0
    return total


def default_detectors(
    straggler_threshold: float = 0.3,
    window: int = 8,
    patience: int = 3,
) -> List[Detector]:
    """The standard online suite (see module docstring)."""
    return [
        StragglerDriftDetector(
            threshold=straggler_threshold, window=window, patience=patience
        ),
        ThroughputCollapseDetector(patience=patience),
        CommStallDetector(patience=patience + 1),
        LimplockDetector(patience=patience),
    ]
