"""The telemetry sampler and the composed health monitor.

:class:`TelemetrySampler` snapshots the live engine into the bounded
ring series of a :class:`~repro.obs.health.series.SeriesBank` at a
configurable virtual-time cadence:

- per rank: cumulative busy seconds (``busy_s``), cumulative wait
  seconds (``wait_s``), bytes sent, completed panel columns
  (``steps``, fed by the executors' :meth:`note_step` hook);
- run-global: event-queue depth, processed-event count, point-to-point
  bytes in flight, LCG tile-cache hit ratio, minimum completed step
  across ranks (``steps_min``), and simulated GF/s priced from the
  per-step flop counts when a configuration is bound.

:class:`HealthMonitor` is the handle the rest of the package talks to
(``obs.health``): it owns the sampler, runs the online detectors after
every tick, forwards each confirmed finding into the trace stream as a
``health.*`` span, arms the run watchdog, and renders the final
:class:`~repro.obs.health.report.HealthReport`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.health.detectors import (
    Detector,
    HealthEvent,
    default_detectors,
)
from repro.obs.health.series import DEFAULT_CAPACITY, SeriesBank
from repro.obs.health.watchdog import RunWatchdog

#: fallback sampling cadence (virtual seconds) when no model estimate
#: is available to auto-scale it
FALLBACK_CADENCE_S = 0.25

#: auto cadence targets this many samples over a modelled run
TARGET_SAMPLES = 128


class TelemetrySampler:
    """Snapshots engine state into bounded time series at a cadence."""

    def __init__(
        self,
        cadence: Optional[float] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if cadence is not None and cadence <= 0:
            raise ConfigurationError(
                f"sampling cadence must be positive, got {cadence}"
            )
        self.cadence = cadence
        self.bank = SeriesBank(capacity)
        #: next virtual time a sample is due (engine compares per event)
        self.next_due = 0.0
        self.num_samples = 0
        self._auto_cadence: Optional[float] = None
        self._steps: Dict[int, int] = {}
        self._flops_prefix: Optional[List[float]] = None
        self._prev_flops: Optional[tuple] = None  # (t, flops_done)

    # -- configuration ----------------------------------------------------

    def bind_config(self, cfg) -> None:
        """Price the run with the model: auto-cadence + per-step flops."""
        try:
            from repro.obs.analysis.progress import step_flops

            prefix = [0.0]
            for k in range(cfg.num_blocks):
                prefix.append(
                    prefix[-1]
                    + step_flops(cfg.n, cfg.block, cfg.num_ranks, k)
                )
            self._flops_prefix = prefix
        except Exception:  # lint: ignore[hygiene] - telemetry must not kill a run
            self._flops_prefix = None
        if self.cadence is None:
            try:
                from repro.model.perf_model import estimate_run

                est = estimate_run(cfg)
                self._auto_cadence = max(
                    est.elapsed / TARGET_SAMPLES, 1e-9
                )
            except Exception:  # lint: ignore[hygiene] - model gaps must not kill a run
                self._auto_cadence = None

    @property
    def effective_cadence(self) -> float:
        return self.cadence or self._auto_cadence or FALLBACK_CADENCE_S

    # -- hooks ------------------------------------------------------------

    def note_step(self, rank: int, k: int) -> None:
        """Executor hook: rank finished panel column ``k``'s update."""
        done = k + 1
        if done > self._steps.get(rank, 0):
            self._steps[rank] = done

    # -- sampling ---------------------------------------------------------

    def sample(self, engine, t: float) -> dict:
        """Record one snapshot of ``engine`` at virtual time ``t``."""
        bank = self.bank
        num_ranks = engine.num_ranks
        steps_min = None
        for r in range(num_ranks):
            st = engine.stats[r]
            bank.series("busy_s", rank=r).append(t, st.total_compute)
            bank.series("wait_s", rank=r).append(t, st.total_wait)
            bank.series("bytes_sent", rank=r).append(t, st.bytes_sent)
            steps_r = self._steps.get(r, 0)
            bank.series("steps", rank=r).append(t, steps_r)
            steps_min = (
                steps_r if steps_min is None else min(steps_min, steps_r)
            )
        steps_min = steps_min or 0
        bank.series("steps_min").append(t, steps_min)
        bank.series("queue_depth").append(t, len(engine._heap))
        bank.series("events").append(t, engine._events)
        bank.series("bytes_in_flight").append(
            t, getattr(engine, "_inflight_bytes", 0)
        )
        bank.series("cache_hit_ratio").append(t, _cache_hit_ratio())
        gflops = self._gflops(t, steps_min)
        if gflops is not None:
            bank.series("gflops").append(t, gflops)
        self.num_samples += 1
        self.next_due = t + self.effective_cadence
        return {"t": t, "steps_min": steps_min, "gflops": gflops}

    def _gflops(self, t: float, steps_min: int) -> Optional[float]:
        """Windowed simulated GF/s from completed-column flop counts."""
        if self._flops_prefix is None:
            return None
        idx = min(steps_min, len(self._flops_prefix) - 1)
        flops_done = self._flops_prefix[idx]
        prev = self._prev_flops
        self._prev_flops = (t, flops_done)
        if prev is None or t <= prev[0]:
            return None
        return (flops_done - prev[1]) / (t - prev[0]) / 1e9


def _cache_hit_ratio() -> float:
    from repro.lcg.cache import tile_cache

    s = tile_cache().stats()
    lookups = s["hits"] + s["misses"]
    return s["hits"] / lookups if lookups else 0.0


class HealthMonitor:
    """Sampler + detectors + watchdog behind one ``obs.health`` handle.

    Attach one to an :class:`~repro.obs.Observability` handle (the
    ``health=`` constructor parameter, or assign ``obs.health``) and
    every engine run under that handle is sampled, watched, and
    summarized::

        obs = Observability(health=HealthMonitor())
        res = simulate_run(cfg, obs=obs)
        print(res.health.render_text())
    """

    def __init__(
        self,
        cadence: Optional[float] = None,
        capacity: int = DEFAULT_CAPACITY,
        detectors: Optional[List[Detector]] = None,
        watchdog: Optional[RunWatchdog] = None,
        straggler_threshold: float = 0.3,
        patience: int = 3,
    ) -> None:
        self.sampler = TelemetrySampler(cadence=cadence, capacity=capacity)
        self.detectors = (
            detectors
            if detectors is not None
            else default_detectors(
                straggler_threshold=straggler_threshold, patience=patience
            )
        )
        self.watchdog = watchdog if watchdog is not None else RunWatchdog()
        self.events: List[HealthEvent] = []
        self.cfg = None
        self.collectives_seen = 0
        self.last_collective: Optional[dict] = None
        self._tracer = None

    # -- wiring -----------------------------------------------------------

    @property
    def next_due(self) -> float:
        """Next virtual time a sample is due (the engine's fast check)."""
        return self.sampler.next_due

    @property
    def bank(self) -> SeriesBank:
        return self.sampler.bank

    def attach(self, obs) -> None:
        """Bind the trace stream health events are emitted into."""
        if obs is not None and obs.enabled:
            self._tracer = obs.tracer

    def bind_run(self, cfg) -> None:
        """Driver hook: price deadlines/cadence from the configuration."""
        self.cfg = cfg
        self.sampler.bind_config(cfg)
        self.watchdog.bind(cfg)

    # -- hooks ------------------------------------------------------------

    def note_step(self, rank: int, k: int) -> None:
        """Executor hook: forward a finished panel column to the sampler."""
        self.sampler.note_step(rank, k)

    def note_collective(self, tag: int, algorithm: str, nbytes: int) -> None:
        """Comm-facade hook: a collective was posted (diagnosis context)."""
        self.collectives_seen += 1
        self.last_collective = {
            "tag": tag, "algorithm": algorithm, "bytes": nbytes,
        }

    def sample_engine(self, engine, t: float) -> None:
        """One sampling tick: snapshot, detect, watchdog-check.

        Called by the engine's event loop; may raise
        :class:`~repro.errors.StallError` when the watchdog trips.
        """
        self.sampler.sample(engine, t)
        bank = self.sampler.bank
        for det in self.detectors:
            for ev in det.update(bank, t):
                self._record(ev)
        self.watchdog.check(engine, t, bank)

    def _record(self, ev: HealthEvent) -> None:
        self.events.append(ev)
        if self._tracer is not None:
            self._tracer.add(
                f"health.{ev.kind}", "health", ev.t, ev.t,
                rank=ev.ranks[0] if ev.ranks else -1,
                attrs={
                    "severity": ev.severity,
                    "ranks": list(ev.ranks),
                    "message": ev.message,
                    **ev.attrs,
                },
            )

    # -- results ----------------------------------------------------------

    @property
    def degraded_ranks(self) -> List[int]:
        """Ranks implicated by any finding, ascending."""
        out = set()
        for ev in self.events:
            out.update(ev.ranks)
        return sorted(out)

    def finalize(self, result=None) -> "HealthReport":
        """Build the run's :class:`HealthReport` (driver calls this)."""
        from repro.obs.health.report import build_health_report

        return build_health_report(self, result=result)
