"""Online health telemetry: sampler, detectors, watchdog, dashboard.

The health layer watches a run *while it executes*: the driver arms a
:class:`HealthMonitor` on the observability handle, the engine samples
itself into bounded time series at a virtual-time cadence, the online
detectors turn those series into structured ``health.*`` findings in
the trace stream, and the watchdog converts a would-be hang into a
diagnosable :class:`~repro.errors.StallError`.  After the run,
:class:`HealthReport` is the JSON artifact and
:func:`render_dashboard` the self-contained HTML view.

Quick start::

    from repro.obs import Observability
    from repro.obs.health import HealthMonitor
    from repro.core.driver import simulate_run

    obs = Observability(health=HealthMonitor())
    res = simulate_run(cfg, obs=obs)
    print(res.health.render_text())
"""

from repro.obs.health.dashboard import render_dashboard, validate_self_contained
from repro.obs.health.detectors import (
    CommStallDetector,
    Detector,
    HealthEvent,
    LimplockDetector,
    StragglerDriftDetector,
    ThroughputCollapseDetector,
    default_detectors,
)
from repro.obs.health.report import (
    HEALTH_SCHEMA,
    HealthReport,
    build_health_report,
)
from repro.obs.health.sampler import HealthMonitor, TelemetrySampler
from repro.obs.health.series import DEFAULT_CAPACITY, RingSeries, SeriesBank
from repro.obs.health.watchdog import DEFAULT_MARGIN, RunWatchdog

__all__ = [
    "CommStallDetector",
    "DEFAULT_CAPACITY",
    "DEFAULT_MARGIN",
    "Detector",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "HEALTH_SCHEMA",
    "LimplockDetector",
    "RingSeries",
    "RunWatchdog",
    "SeriesBank",
    "StragglerDriftDetector",
    "TelemetrySampler",
    "ThroughputCollapseDetector",
    "build_health_report",
    "default_detectors",
    "render_dashboard",
    "validate_self_contained",
]
