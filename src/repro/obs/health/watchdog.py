"""Run watchdog: modelled deadlines instead of open-ended hangs.

The paper's operational rule is to *terminate* abnormal runs early
(Section VI-B) — a hung fabric burns node hours silently.  The
watchdog prices each phase of the run with the analytic model
(:func:`repro.model.perf_model.estimate_run`), inflates it by a
``margin``, and — checked at every health sampling tick — raises a
diagnosable :class:`~repro.errors.StallError` naming the blocked
operations (decoded tag, phase, rank set) the moment the virtual clock
blows past a deadline, instead of letting the event loop grind on.

Two deadlines are armed per run:

- **factorization**: all panel columns must complete within
  ``margin × modelled factorization time``;
- **total**: the whole run must complete within ``margin × modelled
  elapsed``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, StallError
from repro.obs.health.series import SeriesBank

#: default deadline inflation over the analytic model — generous enough
#: that mis-modelled configurations never false-trip (the model is
#: typically within tens of percent), tight enough to catch a stall
#: orders of magnitude before max_events would
DEFAULT_MARGIN = 25.0


class RunWatchdog:
    """Per-phase deadline estimation + diagnosable stall escalation."""

    def __init__(self, margin: float = DEFAULT_MARGIN, enabled: bool = True):
        if margin <= 0:
            raise ConfigurationError(
                f"watchdog margin must be positive, got {margin}"
            )
        self.margin = margin
        self.enabled = enabled
        #: phase name -> deadline (virtual seconds), armed by :meth:`bind`
        self.deadlines: Dict[str, float] = {}
        self._num_blocks: Optional[int] = None
        self.tripped = False

    def bind(self, cfg) -> None:
        """Arm the deadlines from the analytic model of ``cfg``.

        Model gaps (exotic configurations) disarm the watchdog rather
        than kill the run — a health layer must never be the fault.
        """
        if not self.enabled:
            return
        try:
            from repro.model.perf_model import estimate_run

            est = estimate_run(cfg)
            self.deadlines = {
                "factorization": self.margin * est.elapsed_factorization,
                "total": self.margin * est.elapsed,
            }
            self._num_blocks = cfg.num_blocks
        except Exception:  # lint: ignore[hygiene] - model gaps must not kill a run
            self.deadlines = {}

    def check(
        self,
        engine,
        t: float,
        bank: Optional[SeriesBank] = None,
    ) -> None:
        """Raise :class:`StallError` when a deadline is blown.

        Called at every sampling tick with the live engine so the
        exception can name exactly which ranks are blocked on what.
        """
        if not self.enabled or not self.deadlines:
            return
        phase = self._blown_phase(t, bank)
        if phase is None:
            return
        self.tripped = True
        blocked = _blocked_of(engine)
        detail = "; ".join(
            _describe(info) for info in blocked[:8]
        ) or "no rank currently blocked (livelock suspected)"
        raise StallError(
            f"watchdog: {phase} exceeded its deadline "
            f"{self.deadlines[phase]:.3f}s (clock {t:.3f}s, margin "
            f"{self.margin:g}x over the analytic model) — {detail}",
            blocked=blocked,
            elapsed=t,
        )

    def _blown_phase(self, t: float, bank: Optional[SeriesBank]) -> Optional[str]:
        total = self.deadlines.get("total")
        if total is not None and t > total:
            return "total"
        fact = self.deadlines.get("factorization")
        if (
            fact is not None
            and t > fact
            and self._num_blocks is not None
            and bank is not None
        ):
            steps = bank.series("steps_min").last
            if steps is not None and steps[1] < self._num_blocks:
                return "factorization"
        return None

    def to_dict(self) -> dict:
        """JSON-able state (the health report's ``watchdog`` entry)."""
        return {
            "enabled": self.enabled,
            "margin": self.margin,
            "deadlines_s": {k: v for k, v in self.deadlines.items()},
            "tripped": self.tripped,
        }


def _blocked_of(engine) -> List[dict]:
    """The engine's structured blocked-rank diagnosis (empty if none)."""
    fn = getattr(engine, "blocked_ranks", None)
    return fn() if callable(fn) else []


def _describe(info: dict) -> str:
    """One blocked rank as a human-readable clause."""
    rank = info.get("rank")
    state = info.get("state")
    if state == "recv":
        return (
            f"rank {rank} blocked in recv from rank {info.get('src')} "
            f"(tag {info.get('tag')}, phase {info.get('phase')}"
            + (f", step {info['step']}" if info.get("step") is not None else "")
            + ")"
        )
    if state == "collective":
        return (
            f"rank {rank} blocked in {info.get('op')} "
            f"'{info.get('key')}' with members {info.get('members')} "
            f"(arrived: {info.get('arrived')})"
        )
    return f"rank {rank} blocked ({state})"
