"""Bounded time-series storage for the online health layer.

A :class:`RingSeries` is a fixed-capacity ring of ``(t, value)``
samples — the health sampler appends one point per series per sampling
tick, so memory stays bounded no matter how long the run is (the same
design constraint as the span tracer's ring).  A :class:`SeriesBank`
is the named collection the sampler writes into and the detectors read
from: global series are keyed by name, per-rank series by ``(name,
rank)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: default per-series sample bound (one run's worth at ~1% cadence)
DEFAULT_CAPACITY = 512


class RingSeries:
    """Fixed-capacity ring of ``(t, value)`` samples."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"series capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._points: "deque[Tuple[float, float]]" = deque(maxlen=capacity)
        #: samples pushed out of the ring (diagnostic, like tracer.dropped)
        self.dropped = 0

    def append(self, t: float, value: float) -> None:
        """Record one sample; the oldest point falls off when full."""
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((float(t), float(value)))

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, i: int) -> Tuple[float, float]:
        return self._points[i]

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self._points)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self._points[-1] if self._points else None

    def times(self) -> List[float]:
        """The retained timestamps, oldest first."""
        return [t for t, _v in self._points]

    def values(self) -> List[float]:
        """The retained values, oldest first."""
        return [v for _t, v in self._points]

    def rate(self, window: int = 1) -> Optional[float]:
        """Backward difference quotient over the last ``window`` steps.

        ``(v[-1] - v[-1-window]) / (t[-1] - t[-1-window])``, or None
        when the series is too short or time did not advance.  This is
        the primitive every drift detector shares: applied to a
        cumulative series (busy seconds, events) it yields the activity
        *rate* over the recent window.
        """
        if window <= 0 or len(self._points) <= window:
            return None
        t1, v1 = self._points[-1]
        t0, v0 = self._points[-1 - window]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def to_dict(self, max_points: Optional[int] = None) -> dict:
        """JSON-able dump, optionally downsampled to ``max_points``."""
        pts = list(self._points)
        if max_points is not None and len(pts) > max_points > 0:
            stride = len(pts) / max_points
            pts = [pts[int(i * stride)] for i in range(max_points)]
        return {
            "t": [round(t, 9) for t, _v in pts],
            "v": [v for _t, v in pts],
            "dropped": self.dropped,
        }


class SeriesBank:
    """Named collection of ring series (global and per-rank)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._series: Dict[Tuple[str, Optional[int]], RingSeries] = {}

    def series(self, name: str, rank: Optional[int] = None) -> RingSeries:
        """Get-or-create the series for ``name`` (optionally per-rank)."""
        key = (name, rank)
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = RingSeries(self.capacity)
        return s

    def rank_series(self, name: str) -> Dict[int, RingSeries]:
        """Every rank's series under ``name``, keyed by rank."""
        return {
            rank: s
            for (n, rank), s in self._series.items()
            if n == name and rank is not None
        }

    def names(self) -> List[str]:
        """Distinct series names (global and per-rank collapsed)."""
        return sorted({name for name, _rank in self._series})

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return any(n == name for n, _rank in self._series)

    def to_dict(self, max_points: Optional[int] = None) -> dict:
        """JSON-able dump: global series by name, per-rank series under
        ``<name>/rank<r>``."""
        out = {}
        for (name, rank), s in sorted(
            self._series.items(), key=lambda kv: (kv[0][0], kv[0][1] or -1)
        ):
            key = name if rank is None else f"{name}/rank{rank}"
            out[key] = s.to_dict(max_points=max_points)
        return out
