"""The end-of-run health summary document.

A :class:`HealthReport` is the JSON-able artifact a monitored run
leaves behind: the detector findings, the ranks they implicate, the
watchdog state, and a downsampled dump of the sampled time series (so
the dashboard can be rendered later from the document alone).  The
schema is versioned (``repro.obs.health/v1``) and validated by the
``health-report`` checker in :mod:`repro.analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: schema tag stamped into every health document
HEALTH_SCHEMA = "repro.obs.health/v1"

#: per-series point cap in the report dump (keeps documents small; the
#: live bank keeps full resolution)
REPORT_MAX_POINTS = 200


@dataclass
class HealthReport:
    """Structured summary of one monitored run."""

    schema: str = HEALTH_SCHEMA
    source: str = "<monitor>"
    num_ranks: int = 0
    num_samples: int = 0
    cadence_s: float = 0.0
    elapsed_s: Optional[float] = None
    findings: List[dict] = field(default_factory=list)
    degraded_ranks: List[int] = field(default_factory=list)
    watchdog: dict = field(default_factory=dict)
    collectives: int = 0
    series: dict = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when no detector fired and the watchdog never tripped."""
        return not self.findings and not self.watchdog.get("tripped")

    def to_dict(self) -> dict:
        """The ``repro.obs.health/v1`` JSON document."""
        return {
            "schema": self.schema,
            "source": self.source,
            "num_ranks": self.num_ranks,
            "num_samples": self.num_samples,
            "cadence_s": self.cadence_s,
            "elapsed_s": self.elapsed_s,
            "findings": list(self.findings),
            "degraded_ranks": list(self.degraded_ranks),
            "watchdog": dict(self.watchdog),
            "collectives": self.collectives,
            "series": self.series,
        }

    def render_text(self) -> str:
        """Terminal-friendly summary (the ``repro health`` default)."""
        lines = [
            "health report",
            f"  ranks        : {self.num_ranks}",
            f"  samples      : {self.num_samples} "
            f"(cadence {self.cadence_s:.4g}s)",
        ]
        if self.elapsed_s is not None:
            lines.append(f"  elapsed      : {self.elapsed_s:.4f}s")
        wd = self.watchdog
        if wd:
            state = "TRIPPED" if wd.get("tripped") else (
                "armed" if wd.get("deadlines_s") else "disarmed"
            )
            lines.append(
                f"  watchdog     : {state} (margin {wd.get('margin', 0):g}x)"
            )
        if not self.findings:
            lines.append("  findings     : none — run looks healthy")
            return "\n".join(lines)
        lines.append(f"  findings     : {len(self.findings)}")
        if self.degraded_ranks:
            lines.append(
                "  degraded     : rank(s) "
                + ", ".join(str(r) for r in self.degraded_ranks)
            )
        for f in self.findings:
            ranks = f.get("ranks") or []
            who = f"rank {ranks}" if ranks else "global"
            lines.append(
                f"    [{f.get('severity', '?'):8s}] t={f.get('t_s', 0):.4f}s "
                f"{f.get('kind', '?')} ({who}): {f.get('message', '')}"
            )
        return "\n".join(lines)


def build_health_report(monitor, result=None) -> HealthReport:
    """Assemble the report from a finished :class:`HealthMonitor`.

    ``result`` is the driver's RunResult when available — it supplies
    the authoritative elapsed time; otherwise the last sample time is
    used.
    """
    bank = monitor.sampler.bank
    per_rank = bank.rank_series("busy_s")
    elapsed = getattr(result, "elapsed", None)
    if elapsed is None:
        last = bank.series("events").last
        elapsed = last[0] if last else None
    return HealthReport(
        source=f"<monitor:{len(monitor.detectors)} detectors>",
        num_ranks=len(per_rank),
        num_samples=monitor.sampler.num_samples,
        cadence_s=monitor.sampler.effective_cadence,
        elapsed_s=elapsed,
        findings=[ev.to_dict() for ev in monitor.events],
        degraded_ranks=monitor.degraded_ranks,
        watchdog=monitor.watchdog.to_dict(),
        collectives=monitor.collectives_seen,
        series=bank.to_dict(max_points=REPORT_MAX_POINTS),
    )
