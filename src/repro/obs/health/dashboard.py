"""Self-contained HTML dashboard for a monitored run.

:func:`render_dashboard` turns a trace (:class:`ProfileInput`) plus an
optional health document into **one** HTML file with zero external
references — inline CSS and inline SVG only, so the artifact can be
attached to a CI run or mailed around and will render identically on
an air-gapped machine (the paper's runs live on closed systems; so do
their dashboards).  :func:`validate_self_contained` is the guard CI
uses to keep it that way.

Panels:

- run header (machine, ranks, elapsed, findings count);
- per-rank timeline — a Gantt strip per rank, spans colored by phase,
  health findings drawn as vertical markers at their onset time;
- communication heatmap — src x dst bytes from the transfer spans;
- time-series small multiples from the health document (GF/s, queue
  depth, bytes in flight, cache hit ratio, per-rank busy seconds);
- findings table.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Tuple

from repro.obs.analysis.comm_matrix import comm_matrix
from repro.obs.analysis.loaders import ProfileInput, phase_of_span

#: timelines render at most this many rank rows (matches the profile
#: report's matrix cap)
MAX_TIMELINE_RANKS = 64

#: spans shorter than elapsed / this are dropped from the timeline SVG
SPAN_DETAIL = 2000

#: substrings that would make the document reach off-host; the
#: validator greps for these and CI fails the build on any hit
_EXTERNAL_MARKERS = ("http://", "https://", "<script src", "@import", "url(")

_PHASE_COLORS = {
    "panel": "#4e79a7",
    "panel_bcast": "#76b7b2",
    "diag_bcast": "#59a14f",
    "gemm": "#f28e2b",
    "trsm": "#edc948",
    "ir": "#b07aa1",
    "collective": "#9c755f",
    "comm": "#bab0ac",
    "health": "#e15759",
}
_FALLBACK_COLOR = "#79706e"
_SEVERITY_COLORS = {"critical": "#e15759", "warning": "#f1a204"}

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 1.2em 2em;
       color: #222; background: #fafafa; }
h1 { font-size: 1.25em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
th { background: #eee; }
.meta span { margin-right: 1.6em; color: #555; }
.meta b { color: #111; }
svg { background: #fff; border: 1px solid #ddd; }
.legend span { display: inline-block; margin-right: 1em; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border-radius: 2px; }
.sev-critical { color: #c0392b; font-weight: 600; }
.sev-warning { color: #b9770e; font-weight: 600; }
.healthy { color: #1e8449; font-weight: 600; }
"""


def render_dashboard(
    pi: ProfileInput,
    health: Optional[dict] = None,
    title: str = "repro run dashboard",
) -> str:
    """Render the full dashboard as one self-contained HTML string."""
    health = health or {}
    findings = health.get("findings") or []
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        _header_html(pi, health, findings),
    ]
    parts.append("<h2>Per-rank timeline</h2>")
    parts.append(_legend_html(pi))
    parts.append(_timeline_svg(pi, findings))
    parts.append("<h2>Communication heatmap (bytes)</h2>")
    parts.append(_heatmap_svg(pi))
    series = health.get("series") or {}
    if series:
        parts.append("<h2>Health time series</h2>")
        parts.append(_series_html(series))
    parts.append("<h2>Findings</h2>")
    parts.append(_findings_html(findings, health))
    parts.append("</body></html>")
    return "\n".join(parts)


def validate_self_contained(html: str) -> List[str]:
    """Problem strings for every external reference found (empty = ok)."""
    problems = []
    for marker in _EXTERNAL_MARKERS:
        count = html.count(marker)
        if count:
            problems.append(
                f"document references external resources: "
                f"{count} occurrence(s) of {marker!r}"
            )
    return problems


# -- building blocks -------------------------------------------------------


def _esc(s) -> str:
    return _html.escape(str(s), quote=True)


def _header_html(pi: ProfileInput, health: dict, findings: list) -> str:
    cells = [
        f"<span>ranks <b>{pi.num_ranks}</b></span>",
        f"<span>elapsed <b>{pi.elapsed:.4f}s</b></span>",
        f"<span>spans <b>{len(pi.spans)}</b></span>",
    ]
    if health:
        cells.append(
            f"<span>samples <b>{health.get('num_samples', 0)}</b></span>"
        )
        wd = health.get("watchdog") or {}
        if wd.get("tripped"):
            cells.append('<span class="sev-critical">watchdog TRIPPED</span>')
    if findings:
        worst = (
            "critical"
            if any(f.get("severity") == "critical" for f in findings)
            else "warning"
        )
        cells.append(
            f'<span class="sev-{worst}">{len(findings)} finding(s)</span>'
        )
    else:
        cells.append('<span class="healthy">no health findings</span>')
    source = _esc(pi.source)
    cells.append(f"<span>source <b>{source}</b></span>")
    return f'<p class="meta">{" ".join(cells)}</p>'


def _color_of(phase: str) -> str:
    return _PHASE_COLORS.get(phase, _FALLBACK_COLOR)


def _legend_html(pi: ProfileInput) -> str:
    phases = sorted({phase_of_span(s) for s in pi.spans})
    items = "".join(
        f'<span><i style="background:{_color_of(p)}"></i>{_esc(p)}</span>'
        for p in phases
    )
    return f'<p class="legend">{items}</p>'


def _timeline_svg(pi: ProfileInput, findings: list) -> str:
    elapsed = pi.elapsed if pi.elapsed > 0 else 1.0
    ranks = sorted({s.rank for s in pi.spans if s.rank >= 0})
    shown = ranks[:MAX_TIMELINE_RANKS]
    if not shown:
        return "<p>no rank-attributed spans in the trace</p>"
    row_h, gap, left, width = 16, 4, 58, 940
    height = len(shown) * (row_h + gap) + 26
    sx = width / elapsed
    min_dur = elapsed / SPAN_DETAIL
    rows: List[str] = []
    row_of = {r: i for i, r in enumerate(shown)}
    for r in shown:
        y = row_of[r] * (row_h + gap) + 4
        rows.append(
            f'<text x="4" y="{y + row_h - 4}" font-size="11" '
            f'fill="#555">rank {r}</text>'
        )
    dropped = 0
    for s in pi.spans:
        if s.rank not in row_of:
            continue
        dur = s.end - s.start
        if 0 < dur < min_dur:
            dropped += 1
            continue
        y = row_of[s.rank] * (row_h + gap) + 4
        x = left + s.start * sx
        w = max(dur * sx, 0.5)
        phase = phase_of_span(s)
        rows.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_h}" '
            f'fill="{_color_of(phase)}">'
            f"<title>{_esc(s.name)} [{_esc(phase)}] rank {s.rank} "
            f"{s.start:.5f}-{s.end:.5f}s</title></rect>"
        )
    for f in findings:
        t = f.get("t_s")
        if t is None:
            continue
        x = left + min(float(t), elapsed) * sx
        color = _SEVERITY_COLORS.get(f.get("severity"), "#e15759")
        rows.append(
            f'<line x1="{x:.2f}" y1="0" x2="{x:.2f}" '
            f'y2="{height - 20}" stroke="{color}" stroke-width="1.5" '
            f'stroke-dasharray="4,3">'
            f"<title>{_esc(f.get('kind'))} @ {float(t):.4f}s: "
            f"{_esc(f.get('message', ''))}</title></line>"
        )
    axis_y = height - 14
    rows.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + width}" '
        f'y2="{axis_y}" stroke="#999"/>'
    )
    for i in range(5):
        t = elapsed * i / 4
        x = left + t * sx
        rows.append(
            f'<text x="{x:.1f}" y="{height - 2}" font-size="10" '
            f'fill="#777" text-anchor="middle">{t:.3g}s</text>'
        )
    note = (
        f"<p>{dropped} span(s) shorter than {min_dur:.2e}s not drawn; "
        f"{len(ranks) - len(shown)} rank(s) beyond the first "
        f"{MAX_TIMELINE_RANKS} omitted.</p>"
        if (dropped or len(ranks) > len(shown))
        else ""
    )
    svg = (
        f'<svg width="{left + width + 8}" height="{height}" '
        f'viewBox="0 0 {left + width + 8} {height}">'
        + "".join(rows)
        + "</svg>"
    )
    return svg + note


def _heatmap_svg(pi: ProfileInput) -> str:
    cm = comm_matrix(pi.spans, pi.num_ranks)
    m = cm.matrix()
    n = min(len(m), MAX_TIMELINE_RANKS)
    if n == 0 or not cm.bytes_by_pair:
        return "<p>no point-to-point transfers in the trace</p>"
    peak = max(max(row[:n]) for row in m[:n]) or 1
    cell = max(6, min(22, 620 // n))
    left, top = 40, 20
    size_w = left + n * cell + 8
    size_h = top + n * cell + 26
    rows: List[str] = []
    for src in range(n):
        for dst in range(n):
            v = m[src][dst]
            shade = (v / peak) ** 0.5 if v else 0.0
            rows.append(
                f'<rect x="{left + dst * cell}" y="{top + src * cell}" '
                f'width="{cell - 1}" height="{cell - 1}" '
                f'fill="rgb({int(255 - 205 * shade)},'
                f"{int(255 - 155 * shade)},255)\">"
                f"<title>rank {src} → rank {dst}: {int(v)} bytes</title>"
                f"</rect>"
            )
    step = max(1, n // 8)
    for r in range(0, n, step):
        rows.append(
            f'<text x="{left - 6}" y="{top + r * cell + cell * 0.7:.1f}" '
            f'font-size="9" fill="#777" text-anchor="end">{r}</text>'
        )
        rows.append(
            f'<text x="{left + r * cell + cell / 2:.1f}" y="{top - 6}" '
            f'font-size="9" fill="#777" text-anchor="middle">{r}</text>'
        )
    rows.append(
        f'<text x="{left}" y="{size_h - 8}" font-size="10" fill="#555">'
        f"rows: source rank, columns: destination rank "
        f"(peak {int(peak)} bytes)</text>"
    )
    return (
        f'<svg width="{size_w}" height="{size_h}" '
        f'viewBox="0 0 {size_w} {size_h}">' + "".join(rows) + "</svg>"
    )


def _series_html(series: Dict[str, dict]) -> str:
    """Small-multiple polyline charts from a health-report series dump."""
    global_keys = [k for k in series if "/" not in k]
    rank_groups: Dict[str, List[Tuple[str, dict]]] = {}
    for k in series:
        if "/" in k:
            base = k.split("/", 1)[0]
            rank_groups.setdefault(base, []).append((k, series[k]))
    charts = []
    for name in sorted(global_keys):
        charts.append(_chart_svg(name, [(name, series[name])]))
    # Per-rank overlays on one chart per base name so a drifting rank is
    # visible as the diverging line.
    for base in sorted(rank_groups):
        charts.append(_chart_svg(base + " (per rank)", rank_groups[base]))
    return "\n".join(c for c in charts if c)


def _chart_svg(title: str, lines: List[Tuple[str, dict]]) -> str:
    w, h, left, top = 300, 90, 8, 16
    all_t: List[float] = []
    all_v: List[float] = []
    for _name, doc in lines:
        all_t.extend(doc.get("t") or [])
        all_v.extend(doc.get("v") or [])
    if len(all_t) < 2:
        return ""
    t0, t1 = min(all_t), max(all_t)
    v0, v1 = min(all_v), max(all_v)
    if t1 <= t0:
        return ""
    if v1 <= v0:
        v1 = v0 + 1.0
    sx = (w - left - 4) / (t1 - t0)
    sy = (h - top - 8) / (v1 - v0)
    polys = []
    palette = list(_PHASE_COLORS.values())
    for i, (_name, doc) in enumerate(sorted(lines)):
        ts, vs = doc.get("t") or [], doc.get("v") or []
        pts = " ".join(
            f"{left + (t - t0) * sx:.1f},{h - 8 - (v - v0) * sy:.1f}"
            for t, v in zip(ts, vs)
        )
        color = palette[i % len(palette)]
        polys.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="1.3"/>'
        )
    label = (
        f'<text x="{left}" y="11" font-size="10" fill="#333">'
        f"{_esc(title)} [{v0:.3g} … {v1:.3g}]</text>"
    )
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" '
        f'style="margin:0 8px 8px 0">' + label + "".join(polys) + "</svg>"
    )


def _findings_html(findings: list, health: dict) -> str:
    if not findings:
        return '<p class="healthy">none — the run looks healthy.</p>'
    rows = [
        "<table><tr><th>t (s)</th><th>kind</th><th>severity</th>"
        "<th>ranks</th><th>message</th></tr>"
    ]
    for f in findings:
        sev = f.get("severity", "?")
        ranks = ", ".join(str(r) for r in (f.get("ranks") or [])) or "global"
        rows.append(
            f"<tr><td>{float(f.get('t_s', 0)):.4f}</td>"
            f"<td>{_esc(f.get('kind', '?'))}</td>"
            f'<td class="sev-{_esc(sev)}">{_esc(sev)}</td>'
            f"<td>{_esc(ranks)}</td>"
            f"<td>{_esc(f.get('message', ''))}</td></tr>"
        )
    rows.append("</table>")
    degraded = health.get("degraded_ranks") or []
    if degraded:
        rows.append(
            "<p>degraded rank(s): <b>"
            + ", ".join(str(r) for r in degraded)
            + "</b></p>"
        )
    return "".join(rows)
