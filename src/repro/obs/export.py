"""Exporters: Chrome/Perfetto trace JSON, JSONL span logs, Prometheus text.

Three machine-readable views of one telemetry stream:

- :func:`to_chrome_trace` — the ``trace_event`` JSON format loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev (spans become ``"X"``
  complete events; ranks become thread lanes, categories become event
  ``cat`` values; the provenance block rides in ``otherData``);
- :func:`write_jsonl` — one JSON object per span, append-friendly, the
  format to diff/grep across recorded campaigns;
- :func:`to_prometheus_text` — a flat Prometheus-exposition-style dump
  of the metrics registry (counters/gauges as samples, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series).

All exporters serialize through :func:`sanitize_json`, which maps
non-finite floats to ``null`` so the output is *strict* JSON (Python's
``json.dumps`` would otherwise emit bare ``NaN``/``Infinity`` tokens
that other parsers reject).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import SpanTracer

#: schema version stamped into exported Chrome traces
TRACE_SCHEMA_VERSION = 1

#: seconds -> trace_event microseconds
_US = 1e6


def sanitize_json(obj):
    """Recursively replace non-finite floats with None (strict JSON)."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: sanitize_json(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_json(v) for v in obj]
    return obj


def dumps_strict(obj, **kwargs) -> str:
    """``json.dumps`` that never emits NaN/Infinity tokens."""
    return json.dumps(sanitize_json(obj), allow_nan=False, **kwargs)


def filter_spans(
    spans: Iterable,
    cats: Optional[Sequence[str]] = None,
    ranks: Optional[Sequence[int]] = None,
    sort: bool = False,
) -> List:
    """Select and order spans for export.

    ``cats`` / ``ranks`` keep only matching categories / rank lanes
    (None = keep all).  ``sort=True`` applies the canonical ordering
    ``(start, end, rank, cat, name)`` so two exports of the same run are
    byte-identical regardless of buffer/merge interleaving — which is
    what makes trace files diffable across runs.
    """
    cat_set = set(cats) if cats is not None else None
    rank_set = set(ranks) if ranks is not None else None
    out = [
        s for s in spans
        if (cat_set is None or s.cat in cat_set)
        and (rank_set is None or s.rank in rank_set)
    ]
    if sort:
        out.sort(key=lambda s: (s.start, s.end, s.rank, s.cat, s.name))
    return out


def _resolve(source: "Union[SpanTracer, object]"):
    """Accept an Observability handle or a bare tracer."""
    tracer = getattr(source, "tracer", source)
    metrics = getattr(source, "metrics", None)
    provenance = getattr(source, "provenance", None)
    return tracer, metrics, provenance


def to_chrome_trace(
    source,
    provenance: Optional[dict] = None,
    include_metrics: bool = True,
    pid: int = 0,
    cats: Optional[Sequence[str]] = None,
    ranks: Optional[Sequence[int]] = None,
    sort: bool = False,
) -> dict:
    """Build the ``trace_event`` JSON document for a span stream.

    ``source`` is an :class:`~repro.obs.context.Observability` handle or
    a bare :class:`SpanTracer`.  Each rank becomes one thread lane
    (``tid = rank``); spans with ``rank < 0`` (driver-level phases) land
    in a dedicated lane after the largest rank.  ``cats`` / ``ranks`` /
    ``sort`` select and canonically order spans (:func:`filter_spans`);
    the driver lane stays after the largest rank *seen in the full
    stream* so filtered exports keep stable lane numbering.
    """
    tracer, metrics, auto_prov = _resolve(source)
    provenance = provenance if provenance is not None else auto_prov
    max_rank = max((s.rank for s in tracer), default=-1)
    driver_tid = max_rank + 1

    events = []
    seen_tids = set()
    for s in filter_spans(tracer, cats=cats, ranks=ranks, sort=sort):
        tid = s.rank if s.rank >= 0 else driver_tid
        seen_tids.add(tid)
        ev = {
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": s.start * _US,
            "dur": s.duration * _US,
            "pid": pid,
            "tid": tid,
        }
        if s.attrs:
            ev["args"] = dict(s.attrs)
        events.append(ev)

    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro virtual machine"},
        }
    ]
    for tid in sorted(seen_tids):
        label = f"rank {tid}" if tid < driver_tid else "driver"
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        })

    other: dict = {"schema": TRACE_SCHEMA_VERSION, "dropped_spans": tracer.dropped}
    if provenance is not None:
        other["provenance"] = provenance
    if include_metrics and metrics is not None and len(metrics):
        other["metrics"] = metrics.snapshot()

    return sanitize_json({
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    })


def write_chrome_trace(path, source, **kwargs) -> Path:
    """Write :func:`to_chrome_trace` output; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(source, **kwargs), allow_nan=False)
    )
    return path


def write_jsonl(
    path,
    tracer: SpanTracer,
    cats: Optional[Sequence[str]] = None,
    ranks: Optional[Sequence[int]] = None,
    sort: bool = False,
) -> Path:
    """One JSON object per span (rank/cat/name/start/end/attrs).

    ``cats`` / ``ranks`` / ``sort`` as in :func:`filter_spans`.
    """
    path = Path(path)
    with path.open("w") as fh:
        for s in filter_spans(tracer, cats=cats, ranks=ranks, sort=sort):
            fh.write(dumps_strict({
                "name": s.name,
                "cat": s.cat,
                "rank": s.rank,
                "start_s": s.start,
                "end_s": s.end,
                "dur_s": s.duration,
                "attrs": s.attrs or {},
            }))
            fh.write("\n")
    return path


def read_jsonl(path):
    """Load a JSONL span log back into a list of dicts."""
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus-exposition-style flat text dump of the registry.

    Metric names keep their dotted form with dots mapped to underscores
    (``comm.bcast_bytes`` → ``comm_bcast_bytes``).
    """
    lines = []
    typed = set()
    for (name, labels), inst in registry:
        prom = name.replace(".", "_").replace("-", "_")
        if prom not in typed:
            lines.append(f"# TYPE {prom} {inst.kind}")
            typed.add(prom)
        if isinstance(inst, Histogram):
            cumulative = 0
            for bound, count in zip(inst.boundaries, inst.bucket_counts):
                cumulative += count
                le = _prom_labels(labels + (("le", f"{bound:g}"),))
                lines.append(f"{prom}_bucket{le} {cumulative}")
            le = _prom_labels(labels + (("le", "+Inf"),))
            lines.append(f"{prom}_bucket{le} {inst.count}")
            lines.append(f"{prom}_sum{_prom_labels(labels)} {inst.sum:g}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {inst.count}")
            # Summary-style quantiles alongside the raw buckets, so a
            # scrape (or a human) gets p50/p90/p99 without re-deriving
            # them from the cumulative bucket counts.
            if inst.count:
                for q in (0.5, 0.9, 0.99):
                    ql = _prom_labels(labels + (("quantile", f"{q:g}"),))
                    lines.append(f"{prom}{ql} {inst.quantile(q):g}")
        else:
            lines.append(f"{prom}{_prom_labels(labels)} {inst.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")
