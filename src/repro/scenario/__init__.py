"""Declarative fault & variability scenarios (``repro.scenario/v1``).

One :class:`Scenario` object composes slow-GCD populations, limplocked
ranks, mid-run crash + restart-from-regeneration, link jitter and
contention, thermal throttling, and warm-up — and drives the event
engine, the analytic model, and the campaign runner identically::

    from repro.scenario import Scenario, Limplock, LinkJitter

    sc = Scenario(name="demo", injections=(
        Limplock(rank=3, factor=3.0, onset_frac=0.25),
        LinkJitter(amplitude_s=2e-5),
    ))
    res = simulate_run(cfg, scenario=sc)        # event engine
    est = scenario_estimate(cfg, sc)            # analytic model
"""

from repro.scenario.compile import (
    CompiledScenario,
    LinkPlan,
    RatePlan,
    compile_scenario,
    scenario_estimate,
)
from repro.scenario.spec import (
    SCENARIO_SCHEMA,
    ContentionWindow,
    GlobalSpeed,
    Injection,
    Limplock,
    LinkJitter,
    RankCrash,
    RateMultipliers,
    Scenario,
    SlowGcds,
    SlowRank,
    ThermalThrottle,
    Warmup,
    injection_from_dict,
)

__all__ = [
    "SCENARIO_SCHEMA",
    "Scenario",
    "Injection",
    "SlowGcds",
    "SlowRank",
    "Limplock",
    "RankCrash",
    "LinkJitter",
    "ContentionWindow",
    "ThermalThrottle",
    "Warmup",
    "GlobalSpeed",
    "RateMultipliers",
    "injection_from_dict",
    "CompiledScenario",
    "RatePlan",
    "LinkPlan",
    "compile_scenario",
    "scenario_estimate",
]
