"""Compile a :class:`~repro.scenario.Scenario` against a configuration.

A scenario is declarative; the engines need schedules.  The compiler
lowers the injection list into three executable artifacts:

- a **static multiplier vector** — the time-invariant product of every
  static injection (slow-GCD fleet draw, warm-up, global speed, legacy
  per-rank multipliers, onset-0 slow ranks).  When nothing in the
  scenario varies with time this is the *only* artifact, and the engine
  keeps its original single-vector fast path;
- a :class:`RatePlan` — per-rank piecewise-constant rate schedules
  ``m_r(t)`` (onset-delayed limplock, crash blackouts where ``m = 0``,
  thermal-throttle staircases).  The engine integrates compute ops
  through the schedule: a Compute of ``w`` nominal seconds started at
  ``t`` finishes at the earliest ``T`` with ``∫_t^T m_r(u) du = w``;
- a :class:`LinkPlan` — deterministic per-transfer perturbations for
  inter-node messages (seeded latency jitter, bandwidth brown-out
  windows).

The same compilation also yields the scenario's **effective pipeline
multiplier** for the analytic model: in a bulk-synchronous
factorization the slowest participant gates every iteration, so the
fleet progresses at ``m_min(t) = min_r m_r(t)``.  Solving
``∫_0^T m_min = T_nominal`` for ``T`` gives the degraded wall-clock
and ``eff = T_nominal / T`` the single multiplier that reproduces it
through :func:`repro.model.perf_model.estimate_run` — keeping
analytic-vs-event deviation comparable under any scenario.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.scenario.spec import (
    ContentionWindow,
    GlobalSpeed,
    Limplock,
    LinkJitter,
    RankCrash,
    RateMultipliers,
    Scenario,
    SlowGcds,
    SlowRank,
    ThermalThrottle,
    Warmup,
    _resolve_time,
)

#: a thermal staircase ramps over this many time constants before
#: clamping to the floor
_THROTTLE_RAMP_TAUS = 3.0


class RatePlan:
    """Per-rank piecewise-constant rate schedules ``m_r(t)``.

    ``times[r]`` is the ascending breakpoint list (first entry 0.0) and
    ``rates[r][i]`` the multiplier on ``[times[r][i], times[r][i+1])``
    (the last segment extends to infinity).  A rate of exactly 0 is a
    blackout: no progress, and the engine accounts the span as
    ``wait_outage`` rather than compute.
    """

    def __init__(
        self,
        times: Dict[int, List[float]],
        rates: Dict[int, List[float]],
        num_ranks: int,
    ) -> None:
        self._times = times
        self._rates = rates
        self.num_ranks = num_ranks
        for r, rs in rates.items():
            if rs and rs[-1] <= 0:
                raise ConfigurationError(
                    f"rank {r}'s schedule ends in a permanent blackout — "
                    "the run could never finish"
                )

    def rate_at(self, rank: int, t: float) -> float:
        """The multiplier in effect for ``rank`` at virtual time ``t``."""
        times = self._times.get(rank)
        if not times:
            return 1.0
        i = bisect_right(times, t) - 1
        return self._rates[rank][max(i, 0)]

    def advance(self, rank: int, start: float, work: float) -> Tuple[float, float]:
        """Integrate ``work`` nominal seconds of compute from ``start``.

        Returns ``(end_time, outage_seconds)``: the virtual time the op
        completes and how much of the span was spent in blackout
        segments (rate 0).
        """
        times = self._times.get(rank)
        if not times:
            return start + work, 0.0
        rates = self._rates[rank]
        t = start
        outage = 0.0
        i = max(bisect_right(times, t) - 1, 0)
        remaining = work
        while True:
            m = rates[i]
            seg_end = times[i + 1] if i + 1 < len(times) else math.inf
            if m <= 0.0:
                outage += seg_end - t
                t = seg_end
                i += 1
                continue
            span = seg_end - t
            capacity = span * m
            if capacity >= remaining or seg_end == math.inf:
                return t + remaining / m, outage
            remaining -= capacity
            t = seg_end
            i += 1

    def min_rate_schedule(self) -> Tuple[List[float], List[float]]:
        """The fleet-gating schedule ``m_min(t)`` (times, rates)."""
        cuts = {0.0}
        for ts in self._times.values():
            cuts.update(ts)
        times = sorted(cuts)
        mins = []
        for t in times:
            mins.append(
                min(self.rate_at(r, t) for r in range(self.num_ranks))
            )
        return times, mins

    def blackouts(self, rank: int) -> List[Tuple[float, float]]:
        """``[t0, t1)`` blackout windows of one rank."""
        times = self._times.get(rank)
        if not times:
            return []
        rates = self._rates[rank]
        out = []
        for i, m in enumerate(rates):
            if m <= 0.0:
                t1 = times[i + 1] if i + 1 < len(times) else math.inf
                out.append((times[i], t1))
        return out


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: deterministic across processes and runs."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class LinkPlan:
    """Deterministic inter-node transfer perturbations.

    Jitter draws a uniform extra latency in ``[0, amplitude)`` per
    transfer from a counter-mode SplitMix64 stream keyed by
    ``(seed, src_node, dst_node, per-pair counter)`` — no global RNG
    state, so two runs of the same scenario see identical jitter and
    the draw order cannot depend on dict iteration.  Contention windows
    multiply the transfer time of any message *starting* inside them.
    """

    def __init__(
        self,
        jitter_amplitude: float = 0.0,
        jitter_seed: int = 0,
        windows: Optional[List[Tuple[float, float, float]]] = None,
    ) -> None:
        self.jitter_amplitude = jitter_amplitude
        self.jitter_seed = jitter_seed
        #: (t0, t1, bw_factor) brown-out windows
        self.windows = sorted(windows or [])
        self._counters: Dict[Tuple[int, int], int] = {}

    def perturb(
        self, src_node: int, dst_node: int, start: float, size: float,
    ) -> Tuple[float, float]:
        """Returns ``(xfer_scale, extra_latency_s)`` for one transfer."""
        scale = 1.0
        for t0, t1, factor in self.windows:
            if t0 <= start < t1:
                scale *= factor
        extra = 0.0
        if self.jitter_amplitude > 0.0:
            key = (src_node, dst_node)
            n = self._counters.get(key, 0)
            self._counters[key] = n + 1
            h = _mix64(
                _mix64(self.jitter_seed ^ (src_node << 20) ^ dst_node) ^ n
            )
            extra = (h / 2.0**64) * self.jitter_amplitude
        return scale, extra


@dataclass
class CompiledScenario:
    """A scenario lowered against one configuration."""

    scenario: Scenario
    #: time-invariant per-rank multipliers (always valid; the whole
    #: story when :attr:`rate_plan` is None)
    static_multipliers: np.ndarray
    #: piecewise-in-time schedules, or None when the scenario is static
    rate_plan: Optional[RatePlan] = None
    #: inter-node transfer perturbations, or None when links are clean
    link_plan: Optional[LinkPlan] = None
    #: the analytic model's nominal elapsed for the configuration —
    #: the horizon ``*_frac`` times were resolved against
    horizon: float = 0.0
    #: single multiplier reproducing the composed schedule's gating
    #: effect through the analytic model
    pipeline_multiplier: float = 1.0
    #: rank -> [t0, t1) crash blackout windows (diagnostics/tests)
    blackout_windows: Dict[int, List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    @property
    def is_static(self) -> bool:
        return self.rate_plan is None


def _regen_seconds(cfg) -> float:
    """Price a restart-from-regeneration: refill the rank's local tiles
    from the LCG and re-stage them to the device.

    The matrix is a pure function of ``(n, seed)`` so this is the
    *entire* recovery cost — no checkpoint I/O term exists.
    """
    entries = cfg.col_dim.blocks_per_proc * cfg.local_rows * cfg.block
    regen = cfg.machine.cpu_kernels.regen_time(entries)
    h2d = cfg.machine.gpu_kernels.h2d_time(cfg.local_fp32_bytes)
    return regen + h2d


def _throttle_staircase(
    inj: ThermalThrottle, horizon: float
) -> Tuple[List[float], List[float]]:
    """Lower an exponential throttle curve to (times, values)."""
    onset = _resolve_time(inj.onset_s, inj.onset_frac, horizon, default=0.0)
    ramp = _THROTTLE_RAMP_TAUS * inj.tau_s
    times = [0.0]
    values = [1.0]
    for i in range(inj.steps):
        t = onset + i * ramp / inj.steps
        # midpoint value of the exponential over this tread
        mid = (i + 0.5) * _THROTTLE_RAMP_TAUS / inj.steps
        v = inj.floor + (1.0 - inj.floor) * math.exp(-mid)
        times.append(t)
        values.append(v)
    times.append(onset + ramp)
    values.append(inj.floor)
    return times, values


class _Modifier:
    """One piecewise-constant multiplicative factor on a rank's rate."""

    __slots__ = ("times", "values")

    def __init__(self, times: List[float], values: List[float]) -> None:
        self.times = times
        self.values = values

    def value_at(self, t: float) -> float:
        i = bisect_right(self.times, t) - 1
        return self.values[max(i, 0)]


def compile_scenario(scenario: Scenario, cfg) -> CompiledScenario:
    """Lower ``scenario`` against ``cfg`` into engine-ready schedules.

    All validation of the shared injection path happens here — rank
    indices against the world size, multiplier positivity, crash
    windows — raising :class:`~repro.errors.ConfigurationError` before
    anything reaches an engine.
    """
    scenario.validate_for(cfg.num_ranks)
    horizon = _nominal_elapsed(cfg, scenario)

    static = np.ones(cfg.num_ranks)
    # rank -> list of time-varying modifiers; None key = global
    modifiers: Dict[int, List[_Modifier]] = {}
    global_modifiers: List[_Modifier] = []
    link_jitter: Optional[LinkJitter] = None
    windows: List[Tuple[float, float, float]] = []
    blackout_windows: Dict[int, List[Tuple[float, float]]] = {}

    for inj in scenario.injections:
        if isinstance(inj, GlobalSpeed):
            static *= inj.factor
        elif isinstance(inj, RateMultipliers):
            static *= np.asarray(inj.values, dtype=float)
        elif isinstance(inj, SlowGcds):
            from repro.machine.variability import GcdFleet

            fleet = GcdFleet(
                cfg.num_ranks,
                seed=inj.seed,
                sigma=inj.sigma,
                slow_fraction=inj.slow_fraction,
                slow_penalty=inj.slow_penalty,
            )
            static *= fleet.multipliers
        elif isinstance(inj, Warmup):
            static *= inj.multiplier()
        elif isinstance(inj, SlowRank):  # covers Limplock
            onset = _resolve_time(
                inj.onset_s, inj.onset_frac, horizon, default=0.0
            )
            if onset <= 0.0:
                static[inj.rank] *= 1.0 / inj.factor
            else:
                modifiers.setdefault(inj.rank, []).append(
                    _Modifier([0.0, onset], [1.0, 1.0 / inj.factor])
                )
        elif isinstance(inj, RankCrash):
            at = _resolve_time(inj.at_s, inj.at_frac, horizon)
            regen = (
                inj.regen_s if inj.regen_s is not None else _regen_seconds(cfg)
            )
            down_until = at + inj.restart_delay_s + regen
            modifiers.setdefault(inj.rank, []).append(
                _Modifier([0.0, at, down_until], [1.0, 0.0, 1.0])
            )
            blackout_windows.setdefault(inj.rank, []).append(
                (at, down_until)
            )
        elif isinstance(inj, ThermalThrottle):
            times, values = _throttle_staircase(inj, horizon)
            global_modifiers.append(_Modifier(times, values))
        elif isinstance(inj, LinkJitter):
            if link_jitter is not None:
                raise ConfigurationError(
                    "at most one link_jitter injection per scenario"
                )
            link_jitter = inj
        elif isinstance(inj, ContentionWindow):
            t0 = _resolve_time(inj.t0_s, inj.t0_frac, horizon)
            t1 = _resolve_time(inj.t1_s, inj.t1_frac, horizon)
            if t1 <= t0:
                raise ConfigurationError(
                    f"contention window must have t1 > t0, resolved to "
                    f"[{t0:.6g}, {t1:.6g}]"
                )
            windows.append((t0, t1, inj.bw_factor))
        else:  # pragma: no cover - registry and compiler kept in sync
            raise ConfigurationError(
                f"compiler has no lowering for injection kind {inj.kind!r}"
            )

    bad = np.flatnonzero(static <= 0)
    if bad.size:
        raise ConfigurationError(
            f"composed rate multipliers must be positive; rank(s) "
            f"{bad[:4].tolist()} got {static[bad[:4]].tolist()}"
        )

    rate_plan = None
    if modifiers or global_modifiers:
        rate_plan = _build_rate_plan(
            cfg.num_ranks, static, modifiers, global_modifiers
        )

    link_plan = None
    if link_jitter is not None or windows:
        link_plan = LinkPlan(
            jitter_amplitude=(
                link_jitter.amplitude_s if link_jitter else 0.0
            ),
            jitter_seed=link_jitter.seed if link_jitter else 0,
            windows=windows,
        )

    eff = _effective_pipeline_multiplier(static, rate_plan, horizon)
    return CompiledScenario(
        scenario=scenario,
        static_multipliers=static,
        rate_plan=rate_plan,
        link_plan=link_plan,
        horizon=horizon,
        pipeline_multiplier=eff,
        blackout_windows=blackout_windows,
    )


def _nominal_elapsed(cfg, scenario: Scenario) -> float:
    """The analytic model's clean elapsed (the ``*_frac`` horizon)."""
    try:
        from repro.model.perf_model import estimate_run

        return estimate_run(cfg).elapsed
    except Exception as exc:  # lint: ignore[hygiene] - re-raised as config error below
        # Exotic configurations the model cannot price can still run
        # scenarios — as long as every time is absolute.
        for inj in scenario.injections:
            for f in ("onset_frac", "at_frac", "t0_frac", "t1_frac"):
                if getattr(inj, f, None) is not None:
                    raise ConfigurationError(
                        f"{inj.kind} uses {f} but the analytic model "
                        f"cannot price this configuration ({exc}); use "
                        "absolute *_s times"
                    )
        return 0.0


def _build_rate_plan(
    num_ranks: int,
    static: np.ndarray,
    modifiers: Dict[int, List[_Modifier]],
    global_modifiers: List[_Modifier],
) -> RatePlan:
    """Merge static values and modifiers into per-rank schedules."""
    times: Dict[int, List[float]] = {}
    rates: Dict[int, List[float]] = {}
    for r in range(num_ranks):
        mods = list(global_modifiers) + modifiers.get(r, [])
        cuts = {0.0}
        for m in mods:
            cuts.update(m.times)
        ts = sorted(cuts)
        rs = []
        for t in ts:
            v = float(static[r])
            for m in mods:
                v *= m.value_at(t)
            rs.append(v)
        times[r] = ts
        rates[r] = rs
    return RatePlan(times, rates, num_ranks)


def _effective_pipeline_multiplier(
    static: np.ndarray,
    rate_plan: Optional[RatePlan],
    horizon: float,
) -> float:
    """Single multiplier reproducing the composed schedule's gating.

    Solves ``∫_0^T m_min(t) dt = horizon`` for the degraded wall-clock
    ``T`` and returns ``horizon / T``.  With no time variation this is
    just ``min(static)`` — exactly
    :meth:`repro.machine.GcdFleet.pipeline_multiplier`'s rule.
    """
    if rate_plan is None:
        return float(static.min())
    if horizon <= 0.0:
        # no model pricing available: fall back to the worst
        # instantaneous gating rate ever in effect
        times, mins = rate_plan.min_rate_schedule()
        positive = [m for m in mins if m > 0]
        return min(positive) if positive else 1.0
    times, mins = rate_plan.min_rate_schedule()
    target = horizon
    t = 0.0
    done = 0.0
    for i, m in enumerate(mins):
        seg_end = times[i + 1] if i + 1 < len(times) else math.inf
        if m <= 0.0:
            t = seg_end
            continue
        span = seg_end - t
        capacity = span * m
        if capacity >= target - done or seg_end == math.inf:
            t += (target - done) / m
            return horizon / t
        done += capacity
        t = seg_end
    return 1.0  # pragma: no cover - last segment always extends to inf


def scenario_estimate(cfg, scenario: Scenario, keep_iterations: bool = False):
    """Analytic estimate of ``cfg`` under ``scenario``.

    The composed schedule collapses to one effective pipeline
    multiplier (see :func:`_effective_pipeline_multiplier`); link
    perturbations are below the model's resolution and are ignored.
    """
    from repro.model.perf_model import estimate_run

    compiled = compile_scenario(scenario, cfg)
    return estimate_run(
        cfg,
        pipeline_multiplier=compiled.pipeline_multiplier,
        keep_iterations=keep_iterations,
    )
