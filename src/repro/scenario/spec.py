"""Declarative fault & variability scenarios (schema ``repro.scenario/v1``).

The paper treats slow nodes, warm-up, and run-to-run variability as
first-class operational concerns (Section VI-B, Fig 12); the Aurora
follow-up tells the same story on a third machine.  A
:class:`Scenario` composes those effects — plus faults the paper does
*not* attempt, like a mid-run rank crash healed by regenerating the
LCG matrix — into one declarative object that drives the event engine,
the analytic model, and the campaign runner identically.

Injection kinds
---------------

=================== ====================================================
``slow_gcds``       a whole-fleet population of slow GCDs drawn from the
                    Fig-12-calibrated :class:`repro.machine.GcdFleet`
                    distribution (static per-rank multipliers)
``slow_rank``       one rank at ``1/factor`` speed from ``onset`` on
                    (onset 0 = the classic static straggler)
``limplock``        a degraded-not-dead rank: same mechanics as
                    ``slow_rank`` but named for what the health layer
                    should call it — the run *completes*, slowly
``rank_crash``      rank dies at ``at``, is down for ``restart_delay``,
                    then pays the regeneration cost of refilling its
                    local matrix from the LCG (restart-from-regeneration:
                    the matrix is a pure function of ``(n, seed)``, so
                    the replay is bitwise exact)
``link_jitter``     deterministic per-transfer extra latency on
                    inter-node messages, uniform in ``[0, amplitude]``
``contention``      an inter-node bandwidth brown-out: NIC bandwidth is
                    divided by ``bw_factor`` inside the ``[t0, t1)``
                    window (a neighbour job hammering the fabric)
``thermal_throttle``a staircase approximation of a thermal-throttle
                    curve: global compute speed decays from 1.0 toward
                    ``floor`` with time constant ``tau`` after ``onset``
``warmup``          the Fig-12 warm-up multiplier for run ``run_index``
                    of a batch job (:class:`repro.machine.WarmupModel`)
``global_speed``    a uniform static speed multiplier (also the adapter
                    for the deprecated ``global_speed=`` driver
                    parameter)
``rate_multipliers``an explicit per-rank multiplier vector (the adapter
                    for the deprecated ``rate_multipliers=`` parameter)
=================== ====================================================

Times may be given absolutely (``*_s``, virtual seconds) or as a
fraction of the analytic model's estimated elapsed time (``*_frac`` in
``[0, 1]``), which keeps scenario files portable across problem sizes.

The JSON document round-trips losslessly::

    sc = Scenario.from_json(path.read_text())
    assert Scenario.from_dict(sc.to_dict()) == sc
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError

#: schema tag stamped into every scenario document
SCENARIO_SCHEMA = "repro.scenario/v1"


def _check_time_pair(
    name: str, abs_v: Optional[float], frac_v: Optional[float],
    required: bool = True,
) -> None:
    """Validate an absolute/fractional time-field pair."""
    if abs_v is not None and frac_v is not None:
        raise ConfigurationError(
            f"give {name}_s or {name}_frac, not both"
        )
    if required and abs_v is None and frac_v is None:
        raise ConfigurationError(f"one of {name}_s / {name}_frac is required")
    if abs_v is not None and abs_v < 0:
        raise ConfigurationError(f"{name}_s must be >= 0, got {abs_v}")
    if frac_v is not None and not 0.0 <= frac_v <= 1.0:
        raise ConfigurationError(
            f"{name}_frac must be in [0, 1], got {frac_v}"
        )


def _resolve_time(
    abs_v: Optional[float], frac_v: Optional[float], horizon: float,
    default: float = 0.0,
) -> float:
    """Absolute seconds for an (abs, frac) pair against ``horizon``."""
    if abs_v is not None:
        return float(abs_v)
    if frac_v is not None:
        return float(frac_v) * horizon
    return default


@dataclass(frozen=True)
class Injection:
    """Base class: one composable effect inside a :class:`Scenario`."""

    #: stable kind string used in the JSON document
    kind = ""

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on malformed parameters."""

    def validate_for(self, num_ranks: int) -> None:
        """Config-aware validation (rank indices vs the world size)."""

    def to_dict(self) -> dict:
        """JSON-ready object (``None`` fields dropped, tuples listed)."""
        d = {"kind": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            if v is None:
                continue
            d[f.name] = list(v) if isinstance(v, tuple) else v
        return d


def _check_rank(rank: int) -> None:
    if not isinstance(rank, int) or rank < 0:
        raise ConfigurationError(f"rank must be a non-negative int, got {rank}")


def _check_rank_in(rank: int, num_ranks: int, kind: str) -> None:
    if not 0 <= rank < num_ranks:
        raise ConfigurationError(
            f"{kind}: rank {rank} outside the {num_ranks}-rank run"
        )


def _check_factor(factor: float, name: str = "factor") -> None:
    if not factor > 0:
        raise ConfigurationError(f"{name} must be positive, got {factor}")


@dataclass(frozen=True)
class SlowGcds(Injection):
    """Fleet-wide slow-GCD population (Fig-12-calibrated distribution)."""

    kind = "slow_gcds"

    seed: int = 2022
    sigma: float = 0.006
    slow_fraction: float = 0.02
    slow_penalty: float = 0.05

    def validate(self) -> None:
        if not 0.0 <= self.slow_fraction < 1.0:
            raise ConfigurationError(
                f"slow_fraction must be in [0, 1), got {self.slow_fraction}"
            )
        if not 0.0 <= self.slow_penalty < 1.0:
            raise ConfigurationError(
                f"slow_penalty must be in [0, 1), got {self.slow_penalty}"
            )


@dataclass(frozen=True)
class SlowRank(Injection):
    """One rank at ``1/factor`` speed from ``onset`` on."""

    kind = "slow_rank"

    rank: int = 0
    factor: float = 1.5
    onset_s: Optional[float] = None
    onset_frac: Optional[float] = None

    def validate(self) -> None:
        _check_rank(self.rank)
        _check_factor(self.factor)
        _check_time_pair("onset", self.onset_s, self.onset_frac,
                         required=False)

    def validate_for(self, num_ranks: int) -> None:
        _check_rank_in(self.rank, num_ranks, self.kind)


@dataclass(frozen=True)
class Limplock(SlowRank):
    """Degraded-not-dead: a :class:`SlowRank` the health layer should
    diagnose as limplock (typically a harsher factor with a mid-run
    onset)."""

    kind = "limplock"

    factor: float = 3.0


@dataclass(frozen=True)
class RankCrash(Injection):
    """Mid-run rank crash + restart-from-regeneration.

    The rank makes no progress during ``[at, at + restart_delay)``,
    then pays the LCG refill cost of its local tiles (priced from the
    machine model at compile time unless ``regen_s`` overrides it)
    before resuming.  Because the matrix is a pure function of
    ``(n, seed)``, the regenerated blocks are bitwise identical to the
    lost ones — no checkpoint needed.
    """

    kind = "rank_crash"

    rank: int = 0
    at_s: Optional[float] = None
    at_frac: Optional[float] = None
    restart_delay_s: float = 0.0
    #: regeneration cost override; None = price the LCG refill from the
    #: machine model
    regen_s: Optional[float] = None

    def validate(self) -> None:
        _check_rank(self.rank)
        _check_time_pair("at", self.at_s, self.at_frac)
        if self.restart_delay_s < 0:
            raise ConfigurationError(
                f"restart_delay_s must be >= 0, got {self.restart_delay_s}"
            )
        if self.regen_s is not None and self.regen_s < 0:
            raise ConfigurationError(
                f"regen_s must be >= 0, got {self.regen_s}"
            )

    def validate_for(self, num_ranks: int) -> None:
        _check_rank_in(self.rank, num_ranks, self.kind)


@dataclass(frozen=True)
class LinkJitter(Injection):
    """Deterministic per-transfer latency jitter on inter-node links."""

    kind = "link_jitter"

    amplitude_s: float = 1e-5
    seed: int = 2022

    def validate(self) -> None:
        if self.amplitude_s < 0:
            raise ConfigurationError(
                f"amplitude_s must be >= 0, got {self.amplitude_s}"
            )


@dataclass(frozen=True)
class ContentionWindow(Injection):
    """Inter-node bandwidth divided by ``bw_factor`` during a window."""

    kind = "contention"

    bw_factor: float = 2.0
    t0_s: Optional[float] = None
    t0_frac: Optional[float] = None
    t1_s: Optional[float] = None
    t1_frac: Optional[float] = None

    def validate(self) -> None:
        _check_factor(self.bw_factor, "bw_factor")
        if self.bw_factor < 1.0:
            raise ConfigurationError(
                f"bw_factor must be >= 1 (a slowdown), got {self.bw_factor}"
            )
        _check_time_pair("t0", self.t0_s, self.t0_frac)
        _check_time_pair("t1", self.t1_s, self.t1_frac)
        if (
            self.t0_s is not None and self.t1_s is not None
            and self.t1_s <= self.t0_s
        ):
            raise ConfigurationError(
                f"contention window must have t1 > t0, got "
                f"[{self.t0_s}, {self.t1_s}]"
            )
        if (
            self.t0_frac is not None and self.t1_frac is not None
            and self.t1_frac <= self.t0_frac
        ):
            raise ConfigurationError(
                f"contention window must have t1 > t0, got fractions "
                f"[{self.t0_frac}, {self.t1_frac}]"
            )


@dataclass(frozen=True)
class ThermalThrottle(Injection):
    """Global compute-speed decay toward ``floor`` after ``onset``.

    Compiled into a piecewise-constant staircase of ``steps`` levels of
    ``exp(-(t - onset) / tau)`` so the engine's rate schedules stay
    closed-form.
    """

    kind = "thermal_throttle"

    floor: float = 0.9
    tau_s: float = 10.0
    onset_s: Optional[float] = None
    onset_frac: Optional[float] = None
    steps: int = 8

    def validate(self) -> None:
        if not 0 < self.floor <= 1.0:
            raise ConfigurationError(
                f"floor must be in (0, 1], got {self.floor}"
            )
        _check_factor(self.tau_s, "tau_s")
        _check_time_pair("onset", self.onset_s, self.onset_frac,
                         required=False)
        if self.steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {self.steps}")


@dataclass(frozen=True)
class Warmup(Injection):
    """Fig-12 warm-up multiplier for one run of a batch job."""

    kind = "warmup"

    style: str = "generic"
    run_index: int = 0
    warmed_up: bool = False

    def validate(self) -> None:
        if self.style not in ("summit", "frontier", "generic"):
            raise ConfigurationError(
                f"style must be 'summit', 'frontier' or 'generic', got "
                f"{self.style!r}"
            )
        if self.run_index < 0:
            raise ConfigurationError(
                f"run_index must be >= 0, got {self.run_index}"
            )

    def multiplier(self) -> float:
        """The warm-up speed multiplier for this run of the batch."""
        from repro.machine.variability import WarmupModel

        return WarmupModel(self.style).run_multiplier(
            self.run_index, warmed_up=self.warmed_up
        )


@dataclass(frozen=True)
class GlobalSpeed(Injection):
    """Uniform static speed multiplier (deprecated ``global_speed=``)."""

    kind = "global_speed"

    factor: float = 1.0

    def validate(self) -> None:
        _check_factor(self.factor)


@dataclass(frozen=True)
class RateMultipliers(Injection):
    """Explicit per-rank multipliers (deprecated ``rate_multipliers=``)."""

    kind = "rate_multipliers"

    values: Tuple[float, ...] = ()

    def validate(self) -> None:
        if not self.values:
            raise ConfigurationError("values must be a non-empty sequence")
        bad = [v for v in self.values if not v > 0]
        if bad:
            raise ConfigurationError(
                f"rate multipliers must be positive, got {bad[:4]}"
            )

    def validate_for(self, num_ranks: int) -> None:
        if len(self.values) != num_ranks:
            raise ConfigurationError(
                f"rate_multipliers has {len(self.values)} entries for a "
                f"{num_ranks}-rank run"
            )


#: kind string -> injection class (the from_dict dispatch table)
INJECTION_KINDS: Dict[str, Type[Injection]] = {
    cls.kind: cls
    for cls in (
        SlowGcds, SlowRank, Limplock, RankCrash, LinkJitter,
        ContentionWindow, ThermalThrottle, Warmup, GlobalSpeed,
        RateMultipliers,
    )
}


def injection_from_dict(d: dict) -> Injection:
    """Rebuild one injection from its JSON object."""
    if not isinstance(d, dict):
        raise ConfigurationError(
            f"injection must be an object, got {type(d).__name__}"
        )
    kind = d.get("kind")
    cls = INJECTION_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown injection kind {kind!r} "
            f"(known: {', '.join(sorted(INJECTION_KINDS))})"
        )
    known = {f.name for f in fields(cls)}
    extra = set(d) - known - {"kind"}
    if extra:
        raise ConfigurationError(
            f"{kind}: unknown field(s) {', '.join(sorted(extra))}"
        )
    kwargs = {k: v for k, v in d.items() if k != "kind"}
    if cls is RateMultipliers and "values" in kwargs:
        kwargs["values"] = tuple(kwargs["values"])
    try:
        inj = cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"{kind}: {exc}") from exc
    inj.validate()
    return inj


@dataclass(frozen=True)
class Scenario:
    """A named, composable set of injections (the declarative DSL).

    >>> sc = Scenario(name="demo", injections=(
    ...     Limplock(rank=3, factor=3.0, onset_frac=0.25),
    ...     LinkJitter(amplitude_s=2e-5),
    ... ))
    >>> Scenario.from_json(sc.to_json()) == sc
    True
    """

    name: str = "scenario"
    description: str = ""
    injections: Tuple[Injection, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "injections", tuple(self.injections))
        for inj in self.injections:
            inj.validate()

    # -- construction sugar ------------------------------------------------

    @classmethod
    def single_slow_rank(cls, rank: int, factor: float = 1.5) -> "Scenario":
        """The ``--slow-rank R --slow-factor F`` one-liner."""
        return cls(
            name=f"slow-rank-{rank}",
            description=f"rank {rank} degraded to 1/{factor:g} speed",
            injections=(SlowRank(rank=rank, factor=factor),),
        )

    @classmethod
    def from_legacy(
        cls,
        rate_multipliers: Optional[Sequence[float]] = None,
        global_speed: float = 1.0,
    ) -> "Scenario":
        """Adapter for the deprecated raw driver parameters.

        Validation (shape, positivity) happens in the injections, so
        the legacy path gets the same :class:`ConfigurationError`
        diagnostics as first-class scenarios.
        """
        inj: List[Injection] = []
        if global_speed != 1.0:
            inj.append(GlobalSpeed(factor=global_speed))
        if rate_multipliers is not None:
            inj.append(
                RateMultipliers(values=tuple(float(v) for v in rate_multipliers))
            )
        return cls(name="legacy-parameters", injections=tuple(inj))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """The ``repro.scenario/v1`` JSON document."""
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "injections": [inj.to_dict() for inj in self.injections],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Scenario":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"scenario must be an object, got {type(doc).__name__}"
            )
        schema = doc.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ConfigurationError(
                f"unsupported scenario schema {schema!r} "
                f"(expected {SCENARIO_SCHEMA!r})"
            )
        raw = doc.get("injections", [])
        if not isinstance(raw, list):
            raise ConfigurationError("'injections' must be a list")
        return cls(
            name=str(doc.get("name", "scenario")),
            description=str(doc.get("description", "")),
            injections=tuple(injection_from_dict(d) for d in raw),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialized ``repro.scenario/v1`` document text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario is not valid JSON: {exc}")
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path) -> "Scenario":
        """Read a scenario file (the CLI ``--scenario FILE`` entry)."""
        from pathlib import Path

        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read scenario {path}: {exc}")
        return cls.from_json(text)

    def save(self, path) -> str:
        """Write the scenario file; returns the path written."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")
        return str(path)

    # -- introspection -----------------------------------------------------

    def validate_for(self, num_ranks: int) -> None:
        """Config-aware validation of every injection."""
        for inj in self.injections:
            inj.validate_for(num_ranks)

    def of_kind(self, kind: str) -> List[Injection]:
        """All injections of one kind, in declaration order."""
        return [inj for inj in self.injections if inj.kind == kind]

    @property
    def degraded_ranks(self) -> List[int]:
        """Ranks explicitly targeted by per-rank injections, ascending."""
        return sorted({
            inj.rank for inj in self.injections
            if isinstance(inj, (SlowRank, RankCrash))
        })

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        if not self.injections:
            return f"{self.name}: no injections"
        parts = []
        for inj in self.injections:
            if isinstance(inj, RankCrash):
                parts.append(f"crash rank {inj.rank}")
            elif isinstance(inj, SlowRank):
                parts.append(f"{inj.kind} rank {inj.rank} x{inj.factor:g}")
            else:
                parts.append(inj.kind)
        return f"{self.name}: " + ", ".join(parts)
