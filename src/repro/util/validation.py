"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_divisible(value: int, divisor: int, name: str) -> int:
    """Validate that ``value`` is a positive multiple of ``divisor``."""
    check_positive_int(value, name)
    check_positive_int(divisor, f"divisor of {name}")
    if value % divisor != 0:
        raise ConfigurationError(
            f"{name} must be divisible by {divisor}, got {value} "
            f"(remainder {value % divisor})"
        )
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    check_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value
