"""Shared utilities: flop accounting, validation, and human formatting."""

from repro.util.flops import (
    FLOP_GEMM,
    FLOP_GEMV,
    FLOP_GETRF,
    FLOP_TRSM,
    FLOP_TRSV,
    gemm_flops,
    gemv_flops,
    getrf_flops,
    hpl_ai_flops,
    lu_flops,
    trsm_flops,
    trsv_flops,
)
from repro.util.format import (
    format_bytes,
    format_flops,
    format_seconds,
    format_si,
    render_table,
)
from repro.util.validation import (
    check_divisible,
    check_positive_int,
    check_power_of_two,
    require,
)

__all__ = [
    "FLOP_GEMM",
    "FLOP_GEMV",
    "FLOP_GETRF",
    "FLOP_TRSM",
    "FLOP_TRSV",
    "gemm_flops",
    "gemv_flops",
    "getrf_flops",
    "hpl_ai_flops",
    "lu_flops",
    "trsm_flops",
    "trsv_flops",
    "format_bytes",
    "format_flops",
    "format_seconds",
    "format_si",
    "render_table",
    "check_divisible",
    "check_positive_int",
    "check_power_of_two",
    "require",
]
