"""Human-readable formatting helpers for reports, traces and benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence

_SI_PREFIXES = ["", "K", "M", "G", "T", "P", "E", "Z"]


def format_si(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an SI prefix: ``format_si(2.387e18, 'FLOPS')``.

    >>> format_si(2.387e18, "FLOPS")
    '2.387 EFLOPS'
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    idx = 0
    while magnitude >= 1000.0 and idx < len(_SI_PREFIXES) - 1:
        magnitude /= 1000.0
        value /= 1000.0
        idx += 1
    return f"{value:.{precision}f} {_SI_PREFIXES[idx]}{unit}".rstrip()


def format_flops(flops_per_second: float, precision: int = 3) -> str:
    """Format a flop rate, e.g. ``'1.411 EFLOPS'``."""
    return format_si(flops_per_second, "FLOPS", precision)


def format_bytes(num_bytes: float, precision: int = 1) -> str:
    """Format a byte count with binary prefixes (KiB/MiB/GiB/TiB)."""
    prefixes = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"]
    value = float(num_bytes)
    idx = 0
    while abs(value) >= 1024.0 and idx < len(prefixes) - 1:
        value /= 1024.0
        idx += 1
    return f"{value:.{precision}f} {prefixes[idx]}"


def format_seconds(seconds: float) -> str:
    """Format a duration adaptively: microseconds up to hours."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with aligned columns.

    Used by the benchmark harness to print the paper's tables/series in a
    form that diffs cleanly in CI logs.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
