"""Floating-point operation counts for the kernels used by HPL-AI.

All counts follow the standard dense linear-algebra conventions used by
the HPL / HPL-AI submission rules.  The headline benchmark figure divides
``(2/3) N^3 + (3/2) N^2`` flops by the wall-clock time regardless of the
precision in which the operations were actually performed (Section V-A of
the paper); that count is provided by :func:`hpl_ai_flops`.
"""

from __future__ import annotations

# Symbolic kernel tags used by performance models and traces.
FLOP_GEMM = "gemm"
FLOP_GETRF = "getrf"
FLOP_TRSM = "trsm"
FLOP_TRSV = "trsv"
FLOP_GEMV = "gemv"


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops for ``C <- C - A @ B`` with A (m×k), B (k×n).

    One multiply and one add per inner-product term: ``2 m n k``.
    """
    return 2 * m * n * k


def getrf_flops(n: int) -> int:
    """Flops for an unpivoted LU factorization of an n×n block.

    The exact count is ``(2/3) n^3 - (1/2) n^2 - (1/6) n``; HPL rounds this
    to ``2/3 n^3`` which is what the paper's model (eq. 2, ``B^3`` up to a
    constant) uses.  We keep the exact polynomial so small-block tests are
    meaningful.
    """
    return (4 * n**3 - 3 * n**2 - n) // 6


def trsm_flops(m: int, n: int) -> int:
    """Flops for a triangular solve with an m×m triangle and n right-hand sides."""
    return m * m * n


def trsv_flops(n: int) -> int:
    """Flops for a triangular solve with a single right-hand side vector."""
    return n * n


def gemv_flops(m: int, n: int) -> int:
    """Flops for a dense matrix-vector product with an m×n matrix."""
    return 2 * m * n


def lu_flops(n: int) -> int:
    """Leading-order flop count of a full LU factorization, ``(2/3) n^3``."""
    return (2 * n**3) // 3


def hpl_ai_flops(n: int) -> int:
    """The HPL-AI benchmark flop count: ``(2/3) N^3 + (3/2) N^2``.

    This is the numerator of the reported FLOP/s figure per the HPL-AI
    submission rules (the ``(3/2) N^2`` term accounts for the two
    triangular solves of the initial solution).
    """
    return (2 * n**3) // 3 + (3 * n**2) // 2


def per_gcd_gflops(n: int, num_gcds: int, runtime_s: float) -> float:
    """Average effective GFLOP/s per GCD, as plotted throughout Section V.

    Computed as ``((2/3) N^3 + (3/2) N^2) / (P * runtime)`` scaled to 1e9.
    """
    if runtime_s <= 0.0:
        raise ValueError(f"runtime must be positive, got {runtime_s}")
    if num_gcds <= 0:
        raise ValueError(f"num_gcds must be positive, got {num_gcds}")
    return hpl_ai_flops(n) / (num_gcds * runtime_s) / 1.0e9
