"""Crash-safe file writes: temp file in the target directory + rename.

Baselines and campaign state are exactly the files a crash must not
corrupt: ``BENCH_hotpaths.json`` is the ``--against`` CI gate's input,
and the campaign queue/store checkpoints are what ``--resume`` trusts
after a mid-sweep kill.  A bare ``path.write_text(...)`` truncates the
destination before the new bytes land, so an interruption leaves a
half-written (or empty) file behind.  :func:`atomic_write_text` writes
to a temporary sibling in the *same* directory (so the final
``os.replace`` is a same-filesystem atomic rename) and fsyncs before
renaming: readers see either the complete old content or the complete
new content, never a mix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> str:
    """Atomically replace ``path``'s content with ``text``.

    Parent directories are created as needed.  On any failure the
    destination is left untouched and the temporary file is removed.
    Returns the path written (as ``str``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return str(path)


def atomic_write_json(path: Union[str, Path], doc, indent: int = 2) -> str:
    """Atomically write ``doc`` as JSON (trailing newline included)."""
    return atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")
