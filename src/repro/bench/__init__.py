"""Regeneration harness for every table and figure in the paper.

Each ``fig*``/``table*`` function in :mod:`repro.bench.figures` computes
the data series behind one exhibit of the paper's evaluation section;
:mod:`repro.bench.reporting` renders them as ASCII tables.  The
``benchmarks/`` directory wraps these in pytest-benchmark entries, and
the CLI exposes them via ``hplai-sim figure <id>``.
"""

from repro.bench import figures
from repro.bench.reporting import render_series, render_records

__all__ = ["figures", "render_series", "render_records"]
