"""Rendering helpers for benchmark output."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.util.format import render_table


def render_records(
    records: Sequence[Dict[str, object]],
    title: str | None = None,
    columns: Sequence[str] | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a list of homogeneous dicts as an aligned ASCII table."""
    if not records:
        return f"{title or '(empty)'}\n(no rows)"
    cols = list(columns) if columns else list(records[0].keys())
    rows = []
    for rec in records:
        row = []
        for c in cols:
            v = rec.get(c, "")
            if isinstance(v, float):
                v = float_fmt.format(v)
            row.append(v)
        rows.append(row)
    return render_table(cols, rows, title=title)


def render_series(
    x_name: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an x-axis plus named series (a figure's line plot as text)."""
    headers = [x_name] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            v = series[name][i]
            row.append(float_fmt.format(v) if isinstance(v, float) else v)
        rows.append(row)
    return render_table(headers, rows, title=title)
