"""Per-stage regression gate over hotpaths records (``bench --against``).

Compares the per-stage ``min_s`` of a freshly-run (or loaded) hotpaths
record against a recorded baseline and fails — exit non-zero from the
CLI — when any stage slowed down by more than the tolerated fraction.
``min_s`` (not ``mean_s``) is the comparison basis: minimum-of-reps is
the standard noise-resistant statistic for wall-clock microbenchmarks.

The delta machinery itself is
:func:`repro.obs.analysis.regression_deltas`, shared with ``repro
profile --against`` so bench stages and trace phases gate the same way.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.obs.analysis.deviation import Regression, regression_deltas
from repro.util.format import render_table

#: default tolerated fractional slowdown before a stage fails the gate
DEFAULT_MAX_REGRESS = 0.25

#: stages faster than this are timer noise; never fail on them
MIN_GATE_SECONDS = 1e-3


def stage_seconds(record: Dict[str, object]) -> Dict[str, float]:
    """stage → ``min_s`` map of one hotpaths record.

    A stage row without a numeric ``min_s`` is a malformed (most likely
    truncated) record; silently coercing it to ``0.0`` would land it
    under :data:`MIN_GATE_SECONDS` and let it sail through the gate as
    "within budget", so it raises instead.
    """
    if not isinstance(record, dict) or "results" not in record:
        raise ConfigurationError(
            "not a hotpaths record: missing 'results' section"
        )
    out: Dict[str, float] = {}
    for r in record["results"]:
        if not isinstance(r, dict) or "stage" not in r:
            continue
        min_s = r.get("min_s")
        if not isinstance(min_s, (int, float)) or isinstance(min_s, bool):
            raise ConfigurationError(
                f"malformed hotpaths record: stage {r['stage']!r} has no "
                f"numeric 'min_s' (truncated write?)"
            )
        out[str(r["stage"])] = float(min_s)
    return out


def compare_records(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regress: float = DEFAULT_MAX_REGRESS,
) -> List[Regression]:
    """Per-stage regression deltas between two hotpaths records.

    Refuses to compare records of different benchmark shapes — a delta
    between different (n, block, grid) configurations is meaningless.
    """
    cur_cfg = {
        k: v for k, v in (current.get("config") or {}).items()
        if k in ("n", "block", "grid", "machine", "seed")
    }
    base_cfg = {
        k: v for k, v in (baseline.get("config") or {}).items()
        if k in ("n", "block", "grid", "machine", "seed")
    }
    if cur_cfg != base_cfg:
        raise ConfigurationError(
            f"cannot gate against a different benchmark shape: current "
            f"{cur_cfg} vs baseline {base_cfg}"
        )
    return regression_deltas(
        stage_seconds(current),
        stage_seconds(baseline),
        threshold=max_regress,
        min_seconds=MIN_GATE_SECONDS,
    )


def render_regressions(
    deltas: List[Regression], max_regress: float
) -> str:
    """ASCII table of a gate comparison."""
    rows = [
        [r.name, f"{r.baseline_s:.4f}", f"{r.current_s:.4f}",
         f"{r.delta:+.1%}" if r.delta is not None else "-",
         "FAIL" if r.regressed else ""]
        for r in deltas
    ]
    failed = sum(r.regressed for r in deltas)
    title = (
        f"regression gate (>{max_regress:.0%} slower fails): "
        + (f"{failed} stage(s) FAILED" if failed else "all stages within budget")
    )
    return render_table(
        ["stage", "baseline_s", "current_s", "delta", "verdict"],
        rows, title=title,
    )
