"""Terminal plotting for the benchmark figures.

The paper's exhibits are line charts and heat maps; these helpers render
the same data as Unicode/ASCII so ``hplai-sim figure <id> --plot`` and
the examples can show *shapes*, not just tables, with zero plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

_MARKS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def line_plot(
    series: Dict[str, Sequence[tuple]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Plot named ``[(x, y), ...]`` series on a shared canvas.

    Each series gets a distinct mark; a legend maps marks to names.
    """
    import math

    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ConfigurationError("nothing to plot")
    xs = [x for pts in series.values() for x, _y in pts]
    ys = [y for pts in series.values() for _x, y in pts]

    def fx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ConfigurationError("logx requires positive x values")
            return math.log10(x)
        return float(x)

    x_lo, x_hi = min(fx(x) for x in xs), max(fx(x) for x in xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), mark in zip(series.items(), _MARKS):
        for x, y in pts:
            col = round((fx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    top = f"{y_hi:,.0f}" if abs(y_hi) >= 100 else f"{y_hi:.3g}"
    bot = f"{y_lo:,.0f}" if abs(y_lo) >= 100 else f"{y_lo:.3g}"
    pad = max(len(top), len(bot))
    for i, row in enumerate(grid):
        label = top if i == 0 else (bot if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    x_lo_disp = 10 ** x_lo if logx else x_lo
    x_hi_disp = 10 ** x_hi if logx else x_hi
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo_disp:,.0f}"
        + " " * max(width - 24, 1)
        + f"{x_hi_disp:,.0f}"
        + (f"  [x: {x_label}{', log' if logx else ''}]" if x_label else "")
    )
    legend = "   ".join(
        f"{mark}={name}" for (name, _pts), mark in zip(series.items(), _MARKS)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def heat_map(
    rows: Sequence[Sequence[float]],
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: Optional[str] = None,
) -> str:
    """Render a matrix of values as shaded cells (Fig 3 style)."""
    if not rows:
        raise ConfigurationError("nothing to plot")
    flat = [v for r in rows for v in r]
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0

    def shade(v: float) -> str:
        idx = int((v - lo) / span * (len(_SHADES) - 1))
        return _SHADES[idx] * 3

    label_w = max(len(str(r)) for r in row_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (label_w + 1) + " ".join(f"{str(c):>3}"[:3] for c in col_labels)
    lines.append(header)
    for lab, row in zip(row_labels, rows):
        lines.append(
            f"{str(lab):>{label_w}} " + " ".join(shade(v) for v in row)
        )
    lines.append(f"scale: '{_SHADES[0]}' = {lo:,.1f}  ..  "
                 f"'{_SHADES[-1]}' = {hi:,.1f}")
    return "\n".join(lines)


def records_to_series(
    records: Sequence[dict], x_key: str, y_key: str, group_key: str
) -> Dict[str, List[tuple]]:
    """Group benchmark records into plottable series."""
    out: Dict[str, List[tuple]] = {}
    for rec in records:
        out.setdefault(str(rec[group_key]), []).append(
            (rec[x_key], rec[y_key])
        )
    for pts in out.values():
        pts.sort(key=lambda p: p[0])
    return out
