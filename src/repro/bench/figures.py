"""Data generators for every table and figure of the paper's evaluation.

Each function returns plain records (lists of dicts) so the pytest
benchmarks, the CLI, and the examples can all print or post-process the
same data.  Paper-scale studies use the analytic model (O(N/B) per
configuration); the per-iteration timing breakdown (Fig 10) runs the
discrete-event engine at the paper's own 64-GCD configuration.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import BenchmarkConfig
from repro.core.hpl import hpl_gflops_per_gcd
from repro.machine import FRONTIER, SUMMIT, GcdFleet
from repro.machine.spec import MachineSpec
from repro.model.perf_model import estimate_run
from repro.model.tuner import sweep_block_sizes, sweep_local_sizes
from repro.tools.slownode import scan_fleet
from repro.tools.warmup import project_run_series

# The paper's reference configurations.
SUMMIT_NL = 61440
FRONTIER_NL = 119808
SUMMIT_ACHIEVEMENT = dict(
    machine=SUMMIT, n=SUMMIT_NL * 162, block=768, p_rows=162, p_cols=162,
    q_rows=3, q_cols=2, bcast_algorithm="bcast",
)
FRONTIER_ACHIEVEMENT = dict(
    machine=FRONTIER, n=FRONTIER_NL * 172, block=3072, p_rows=172, p_cols=172,
    q_rows=4, q_cols=2, bcast_algorithm="ring2m",
)

ALGORITHMS = ("bcast", "ibcast", "ring1", "ring1m", "ring2m")


def _node_grids(machine: MachineSpec) -> List[tuple]:
    q = machine.node.gcds_per_node
    return [(qr, q // qr) for qr in range(1, q + 1) if q % qr == 0]


# ---------------------------------------------------------------------------
# Tables I and II


def table1_specs() -> List[Dict[str, object]]:
    """Table I: key architectural specifications side by side."""
    s, f = SUMMIT.describe(), FRONTIER.describe()
    keys = list(s.keys())
    return [
        {"spec": k, "Summit": s[k], "Frontier": f[k]} for k in keys
    ]


def table2_blas_mapping() -> List[Dict[str, object]]:
    """Table II: cross-platform BLAS library functions."""
    from repro.blas.shim import VENDOR_NAMES

    return [
        {
            "BLAS": op.upper(),
            "Summit": VENDOR_NAMES["cuda"][op],
            "Frontier": VENDOR_NAMES["rocm"][op],
        }
        for op in ("gemm", "trsm", "getrf", "trsv")
    ]


# ---------------------------------------------------------------------------
# Fig 3: rocBLAS GEMM flop-rate heat map


def fig3_gemm_heatmap(
    machine: MachineSpec = FRONTIER,
    mn_values: Sequence[int] = (1024, 2048, 3072, 4096, 6144, 8192, 12288),
    k_values: Sequence[int] = (256, 512, 1024, 1536, 2048, 3072, 4096),
) -> List[Dict[str, object]]:
    """GEMM rate (TFLOP/s) for C = A^T B as a function of (m=n, k=B)."""
    km = machine.gpu_kernels
    out = []
    for mn in mn_values:
        row: Dict[str, object] = {"m=n": mn}
        for k in k_values:
            row[f"k={k}"] = km.gemm_rate(mn, mn, k) / 1e12
        out.append(row)
    return out


# ---------------------------------------------------------------------------
# Figs 5 and 6: per-iteration kernel rates over the factorization


def fig56_kernel_curves(
    machine: MachineSpec,
    blocks: Sequence[int],
    n_local: int,
    points: int = 12,
) -> List[Dict[str, object]]:
    """GEMM/GETRF/TRSM rates vs trailing size, one series per B.

    Fig 5 uses the V100 (Summit) model; Fig 6 the MI250X (Frontier).
    """
    km = machine.gpu_kernels
    out = []
    for b in blocks:
        for i in range(points, 0, -1):
            trailing = max((n_local // points) * i, b)
            out.append(
                {
                    "B": b,
                    "trailing": trailing,
                    "gemm_tflops": km.gemm_rate(trailing, trailing, b, lda=n_local) / 1e12,
                    "getrf_tflops": km.getrf_rate(b) / 1e12,
                    "trsm_tflops": km.trsm_rate(b, trailing) / 1e12,
                }
            )
    return out


def fig5_v100_kernels() -> List[Dict[str, object]]:
    """Fig 5 at the paper's Summit configuration (wrapper for the CLI)."""
    return fig56_kernel_curves(SUMMIT, [256, 512, 768, 1024, 2048], 61440)


def fig6_mi250x_kernels() -> List[Dict[str, object]]:
    """Fig 6 at the paper's Frontier configuration (wrapper for the CLI)."""
    return fig56_kernel_curves(FRONTIER, [512, 1024, 2048, 3072, 4096], 119808)


# ---------------------------------------------------------------------------
# Fig 7: GEMM rate vs leading dimension


def fig7_lda_effect(
    machine: MachineSpec = FRONTIER,
    ldas: Sequence[int] = (107520, 113664, 119808, 122880),
    block: int = 3072,
    points: int = 10,
) -> List[Dict[str, object]]:
    """GEMM rate over the run for different LDAs; 122880 is pathological."""
    km = machine.gpu_kernels
    out = []
    for lda in ldas:
        for i in range(points, 0, -1):
            size = (lda // points) * i
            out.append(
                {
                    "LDA": lda,
                    "gemm_size": size,
                    "gemm_tflops": km.gemm_rate(size, size, block, lda=lda) / 1e12,
                }
            )
    return out


# ---------------------------------------------------------------------------
# Fig 4: total performance vs block size, distinct comm layouts


def fig4_blocksize_total() -> List[Dict[str, object]]:
    """Per-GCD throughput vs B on both systems at the paper's scales.

    Summit: 2916 GCDs (P_r = 54); Frontier: 1024 GCDs (P_r = 32).
    """
    out = []
    summit_blocks = [256, 512, 768, 1024, 1280, 2048, 3072]
    for rec in sweep_block_sizes(
        SUMMIT, SUMMIT_NL, 54, summit_blocks,
        q_rows=3, q_cols=2, bcast_algorithm="bcast",
    ):
        rec["machine"] = "summit"
        out.append(rec)
    frontier_blocks = [512, 768, 1024, 1536, 2304, 3072]
    for rec in sweep_block_sizes(
        FRONTIER, FRONTIER_NL, 32, frontier_blocks,
        q_rows=2, q_cols=4, bcast_algorithm="ring2m",
    ):
        rec["machine"] = "frontier"
        out.append(rec)
    return out


# ---------------------------------------------------------------------------
# Fig 8: communication strategies x node-local grids


def fig8_comm_strategies(
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Dict[str, object]]:
    """GFLOPS/GCD for every broadcast strategy and node-local grid.

    Summit at 2916 GCDs, Frontier at 1024 GCDs, as in the paper.
    """
    out = []
    cases = [
        (SUMMIT, SUMMIT_NL, 768, 54),
        (FRONTIER, FRONTIER_NL, 3072, 32),
    ]
    for machine, nl, block, p in cases:
        for qr, qc in _node_grids(machine):
            if p % qr or p % qc:
                continue
            for algo in algorithms:
                cfg = BenchmarkConfig(
                    n=nl * p, block=block, machine=machine,
                    p_rows=p, p_cols=p, q_rows=qr, q_cols=qc,
                    bcast_algorithm=algo,
                )
                res = estimate_run(cfg)
                out.append(
                    {
                        "machine": machine.name,
                        "algorithm": algo,
                        "grid": f"{qr}x{qc}",
                        "gflops_per_gcd": res.gflops_per_gcd,
                    }
                )
    return out


def fig8_finding5_port_binding() -> List[Dict[str, object]]:
    """Finding 5: port binding on Summit (35.6-59.7% improvement)."""
    out = []
    for algo in ALGORITHMS:
        res = {}
        for bound in (True, False):
            cfg = BenchmarkConfig(
                n=SUMMIT_NL * 54, block=768, machine=SUMMIT,
                p_rows=54, p_cols=54, q_rows=3, q_cols=2,
                bcast_algorithm=algo, port_binding=bound,
            )
            res[bound] = estimate_run(cfg).gflops_per_gcd
        out.append(
            {
                "algorithm": algo,
                "bound_gflops": res[True],
                "unbound_gflops": res[False],
                "improvement_pct": 100.0 * (res[True] / res[False] - 1.0),
            }
        )
    return out


def fig8_finding7_gpu_aware() -> List[Dict[str, object]]:
    """Finding 7: GPU-aware MPI on Frontier (40.3-56.6% improvement)."""
    out = []
    for algo in ALGORITHMS:
        res = {}
        for aware in (True, False):
            cfg = BenchmarkConfig(
                n=FRONTIER_NL * 32, block=3072, machine=FRONTIER,
                p_rows=32, p_cols=32, q_rows=2, q_cols=4,
                bcast_algorithm=algo, gpu_aware=aware,
            )
            res[aware] = estimate_run(cfg).gflops_per_gcd
        out.append(
            {
                "algorithm": algo,
                "gpu_aware_gflops": res[True],
                "staged_gflops": res[False],
                "improvement_pct": 100.0 * (res[True] / res[False] - 1.0),
            }
        )
    return out


# ---------------------------------------------------------------------------
# Fig 9: memory-size weak scaling


def fig9_weak_scaling() -> List[Dict[str, object]]:
    """GFLOPS/GCD vs GCD count at constant per-GCD memory, both systems.

    Summit baseline 36 GCDs -> 2916; Frontier 64 -> 16384, column-major
    vs tuned node grids; parallel efficiency is relative to the first
    point of each series (the paper's definition).
    """
    out = []
    series = [
        ("summit", SUMMIT, SUMMIT_NL, 768, "bcast",
         [(6, 1), (3, 2)], [6, 12, 18, 36, 54]),
        ("frontier", FRONTIER, FRONTIER_NL, 3072, "ring2m",
         [(8, 1), (2, 4)], [8, 16, 32, 64, 128]),
    ]
    for name, machine, nl, block, algo, grids, p_values in series:
        for qr, qc in grids:
            base = None
            for p in p_values:
                if p % qr or p % qc:
                    continue
                cfg = BenchmarkConfig(
                    n=nl * p, block=block, machine=machine,
                    p_rows=p, p_cols=p, q_rows=qr, q_cols=qc,
                    bcast_algorithm=algo,
                )
                res = estimate_run(cfg)
                if base is None:
                    base = res.gflops_per_gcd
                out.append(
                    {
                        "machine": name,
                        "grid": f"{qr}x{qc}",
                        "gcds": p * p,
                        "gflops_per_gcd": res.gflops_per_gcd,
                        "parallel_eff_pct": 100.0 * res.gflops_per_gcd / base,
                    }
                )
    return out


# ---------------------------------------------------------------------------
# Fig 10: per-iteration timing breakdown (event engine, 64 GCDs)


def fig10_timing_breakdown(
    n_local: int = FRONTIER_NL, sample_every: int = 16
) -> List[Dict[str, object]]:
    """Per-iteration component times on Frontier with 64 GCDs (rank 0).

    The paper's Fig 10 uses N_L = 119808; the default here scales N_L
    down 4x so the discrete-event run finishes in seconds — the *shape*
    (GEMM-dominated early, communication-dominated in the final trailing
    iterations) is preserved.  Pass ``n_local=119808`` for the full
    configuration.
    """
    from repro.core.driver import simulate_run

    cfg = BenchmarkConfig(
        n=n_local * 8, block=3072, machine=FRONTIER, p_rows=8, p_cols=8,
        q_rows=2, q_cols=4, bcast_algorithm="ring2m",
    )
    res = simulate_run(cfg)
    out = []
    for entry in res.trace:
        k = entry["k"]
        total = entry["panel"] + entry["gemm"] + entry["recv"]
        if total <= 0.0:
            continue  # empty trailing iterations at the very end
        if k % sample_every and k != cfg.num_blocks - 1:
            continue
        out.append(
            {
                "iteration": k,
                "panel_s": entry["panel"],
                "gemm_s": entry["gemm"],
                "comm_wait_s": entry["recv"],
                "total_s": total,
                "comm_fraction_pct": 100.0 * entry["recv"] / total if total else 0.0,
            }
        )
    return out


# ---------------------------------------------------------------------------
# Fig 11: exascale achievement runs


def fig11_exascale_runs() -> List[Dict[str, object]]:
    """The two achievement configurations plus the full-system projections."""
    runs = [
        ("summit 26244 GCDs (paper: 1.411 EF)", SUMMIT_ACHIEVEMENT, 1.411e18),
        ("frontier 29584 GCDs (paper: 2.387 EF)", FRONTIER_ACHIEVEMENT, 2.387e18),
        (
            "frontier ~full 73984 GCDs (paper: >5 EF expected)",
            dict(
                machine=FRONTIER, n=FRONTIER_NL * 272, block=3072,
                p_rows=272, p_cols=272, q_rows=4, q_cols=2,
                bcast_algorithm="ring2m",
            ),
            5.0e18,
        ),
    ]
    out = []
    for label, kw, paper_flops in runs:
        cfg = BenchmarkConfig(**kw)
        res = estimate_run(cfg)
        out.append(
            {
                "run": label,
                "N": cfg.n,
                "B": cfg.block,
                "GCDs": cfg.num_ranks,
                "measured_eflops": res.total_flops_per_s / 1e18,
                "paper_eflops": paper_flops / 1e18,
                "ratio_vs_paper": res.total_flops_per_s / paper_flops,
                "elapsed_s": res.elapsed,
            }
        )
    return out


def roofline_report() -> List[Dict[str, object]]:
    """Roofline points for both machines at the paper's configurations:
    the quantitative form of "an architecturally well balanced system"."""
    from repro.model.roofline import (
        memory_roofline,
        min_local_size_for_compute_bound,
        network_roofline,
    )

    out = []
    for machine, b, nl in ((SUMMIT, 768, SUMMIT_NL),
                           (FRONTIER, 3072, FRONTIER_NL)):
        for p in memory_roofline(machine, b, nl):
            out.append(
                {
                    "machine": machine.name,
                    "phase": p.name,
                    "flops_per_byte": p.arithmetic_intensity,
                    "attainable_tflops": p.attainable_tflops,
                    "bound": p.bound,
                }
            )
        netp = network_roofline(machine, b, nl)
        out.append(
            {
                "machine": machine.name,
                "phase": netp.name,
                "flops_per_byte": netp.arithmetic_intensity,
                "attainable_tflops": netp.attainable_tflops,
                "bound": netp.bound,
            }
        )
        out.append(
            {
                "machine": machine.name,
                "phase": "min N_L for compute-bound",
                "flops_per_byte": float(
                    min_local_size_for_compute_bound(machine)
                ),
                "attainable_tflops": float("nan"),
                "bound": f"paper used N_L={nl}",
            }
        )
    return out


def frontier_vs_summit_projection() -> List[Dict[str, object]]:
    """Section II expectation: "Frontier is expected to see about 3x
    HPL-AI performance improvement when compared to Summit at full
    scale" (1.58x per node x 2x+ nodes, minus scaling losses)."""
    # Full-ish machines: largest square grids that tile cleanly.
    summit_cfg = BenchmarkConfig(
        machine=SUMMIT, n=SUMMIT_NL * 162, block=768,
        p_rows=162, p_cols=162, q_rows=3, q_cols=2,
        bcast_algorithm="bcast",
    )
    frontier_cfg = BenchmarkConfig(
        machine=FRONTIER, n=FRONTIER_NL * 272, block=3072,
        p_rows=272, p_cols=272, q_rows=4, q_cols=2,
        bcast_algorithm="ring2m",
    )
    s_res = estimate_run(summit_cfg)
    f_res = estimate_run(frontier_cfg)
    ratio = f_res.total_flops_per_s / s_res.total_flops_per_s
    return [
        {
            "summit_eflops": s_res.total_flops_per_s / 1e18,
            "frontier_full_eflops": f_res.total_flops_per_s / 1e18,
            "ratio": ratio,
            "paper_expectation": 3.0,
        }
    ]


def hpl_vs_hplai() -> List[Dict[str, object]]:
    """The headline mixed-precision speedup: HPL-AI vs HPL per GCD."""
    out = []
    for label, kw, paper_ratio in [
        ("summit", SUMMIT_ACHIEVEMENT, 9.5),
        ("frontier", FRONTIER_ACHIEVEMENT, None),
    ]:
        cfg = BenchmarkConfig(**kw)
        res = estimate_run(cfg)
        hpl = hpl_gflops_per_gcd(cfg.machine)
        out.append(
            {
                "machine": label,
                "hplai_gflops_per_gcd": res.gflops_per_gcd,
                "hpl_gflops_per_gcd": hpl,
                "speedup": res.gflops_per_gcd / hpl,
                "paper_speedup": paper_ratio if paper_ratio else float("nan"),
            }
        )
    return out


# ---------------------------------------------------------------------------
# Fig 12: run-to-run variability


def fig12_variability(num_runs: int = 6) -> List[Dict[str, object]]:
    """Six consecutive full runs on each machine (warm-up effects)."""
    out = []
    for label, kw in [("summit", SUMMIT_ACHIEVEMENT),
                      ("frontier", FRONTIER_ACHIEVEMENT)]:
        cfg = BenchmarkConfig(**kw)
        base = estimate_run(cfg).elapsed
        for rec in project_run_series(cfg.machine, base, num_runs=num_runs):
            out.append(
                {
                    "machine": label,
                    "run": rec["run"],
                    "elapsed_s": rec["elapsed_s"],
                    "relative_perf_pct": 100.0 * rec["relative_perf"],
                }
            )
    return out


# ---------------------------------------------------------------------------
# Section V-D: N_L tuning; Section VI-B: slow-node scan


def nl_tuning(p_values: Sequence[int] = (8, 16, 32)) -> List[Dict[str, object]]:
    """N_L = 119808 vs 122880 at 64 / 256 / 1024 GCDs (Section V-D)."""
    out = []
    for p in p_values:
        for rec in sweep_local_sizes(
            FRONTIER, block=3072, p=p, locals_=[119808, 122880],
            q_rows=2, q_cols=4, bcast_algorithm="ring2m",
        ):
            rec["gcds"] = p * p
            out.append(rec)
    return out


def slownode_scan(num_gcds: int = 1024, seed: int = 2022) -> List[Dict[str, object]]:
    """The slow-GCD scan workflow on a seeded fleet."""
    fleet = GcdFleet(num_gcds, seed=seed)
    report = scan_fleet(fleet, FRONTIER)
    return [
        {
            "gcds_scanned": num_gcds,
            "max_variation_pct": 100.0 * report.max_variation,
            "slow_gcds": len(report.slow_gcds),
            "excluded_nodes": len(report.slow_nodes),
            "projected_speedup": report.projected_speedup,
        }
    ]


# ---------------------------------------------------------------------------
# Section VI-A: strong scaling (no chart in the paper "due to limited
# space"; the text reports it is communication bound at scale)


def strong_scaling(
    machine: MachineSpec = SUMMIT,
    n: int = 61440 * 16,
    block: int = 768,
    p_values: Sequence[int] = (16, 32, 64),
) -> List[Dict[str, object]]:
    """Fixed N, growing machine: per-GCD rate decays as communication
    and panel work stop amortizing (Section VI-A)."""
    algo = "bcast" if machine.name == "summit" else "ring2m"
    out = []
    base = None
    for p in p_values:
        if n % (block * p):
            continue
        cfg = BenchmarkConfig(
            n=n, block=block, machine=machine, p_rows=p, p_cols=p,
            bcast_algorithm=algo,
        )
        res = estimate_run(cfg)
        if base is None:
            base = (p * p, res.elapsed)
        out.append(
            {
                "gcds": p * p,
                "elapsed_s": res.elapsed,
                "gflops_per_gcd": res.gflops_per_gcd,
                "speedup": base[1] / res.elapsed,
                "ideal_speedup": (p * p) / base[0],
                "strong_eff_pct": 100.0 * (base[1] / res.elapsed)
                / ((p * p) / base[0]),
            }
        )
    return out


# ---------------------------------------------------------------------------
# Ablations beyond the paper's exhibits


def ablation_lookahead() -> List[Dict[str, object]]:
    """Look-ahead on/off at the paper's Fig-8 scales (both machines)."""
    out = []
    for machine, nl, block, p, qr, qc, algo in [
        (SUMMIT, SUMMIT_NL, 768, 54, 3, 2, "bcast"),
        (FRONTIER, FRONTIER_NL, 3072, 32, 2, 4, "ring2m"),
    ]:
        res = {}
        for la in (True, False):
            cfg = BenchmarkConfig(
                n=nl * p, block=block, machine=machine, p_rows=p, p_cols=p,
                q_rows=qr, q_cols=qc, bcast_algorithm=algo, lookahead=la,
            )
            res[la] = estimate_run(cfg).gflops_per_gcd
        out.append(
            {
                "machine": machine.name,
                "lookahead_gflops": res[True],
                "no_lookahead_gflops": res[False],
                "improvement_pct": 100.0 * (res[True] / res[False] - 1.0),
            }
        )
    return out
