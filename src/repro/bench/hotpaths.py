"""Hot-path micro/macro benchmark harness (``bench hotpaths``).

Times the exact-path regions this repo optimizes — LCG fill (cold and
tile-cache-warm), panel factorization, trailing update, IR residual and
column sweep — plus two end-to-end anchors (distributed FP64 HPL and the
exact mixed-precision HPL-AI run), and writes a ``BENCH_hotpaths.json``
record so perf trajectory is tracked across PRs.

The end-to-end HPL stage also records solution/ipiv checksums and the
residual, pinning the optimization contract: faster, bitwise-identical.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import BenchmarkConfig
from repro.lcg.cache import clear_tile_cache, tile_cache
from repro.lcg.matrix import HplAiMatrix
from repro.machine import get_machine
from repro.obs import context as obs_context
from repro.util.atomicio import atomic_write_text

SCHEMA = "repro.bench.hotpaths/v1"
#: records live under the (gitignored) results directory; the bare
#: filename at the repo root is the pre-PR-5 legacy location still
#: honoured by :func:`load_record` / :func:`_previous_record`
DEFAULT_OUT = "benchmarks/results/BENCH_hotpaths.json"
LEGACY_OUT = "BENCH_hotpaths.json"


@dataclass
class StageResult:
    """Timing summary of one benchmark stage."""

    name: str
    reps: int
    times_s: List[float] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.times_s)) if self.times_s else 0.0

    @property
    def min_s(self) -> float:
        return float(np.min(self.times_s)) if self.times_s else 0.0

    def to_record(self) -> Dict[str, object]:
        """Flatten to a JSON/table row (stage extras merged in)."""
        rec: Dict[str, object] = {
            "stage": self.name,
            "reps": self.reps,
            "mean_s": round(self.mean_s, 6),
            "min_s": round(self.min_s, 6),
            "max_s": round(float(np.max(self.times_s)), 6)
            if self.times_s else 0.0,
        }
        rec.update(self.extra)
        return rec


def _sha16(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()[:16]


def _timed(fn: Callable[[], object], reps: int, name: str) -> StageResult:
    """Run ``fn`` ``reps`` times under an obs span, collecting wall times."""
    obs = obs_context.current()
    result = StageResult(name=name, reps=reps)
    for _ in range(reps):
        span = (
            obs.tracer.span(f"bench.{name}", "hotpath", 0, clock="wall")
            if obs.enabled else None
        )
        t0 = time.perf_counter()
        if span is not None:
            with span:
                out = fn()
        else:
            out = fn()
        result.times_s.append(time.perf_counter() - t0)
        if isinstance(out, dict):
            result.extra.update(out)
    return result


def _bands(m: HplAiMatrix, b: int):
    """Generate every full-width row band (the canonical cache unit)."""
    for g in range(m.n // b):
        m.block(g * b, (g + 1) * b, 0, m.n)


def run_hotpaths(
    n: int = 1024,
    block: int = 64,
    grid: int = 2,
    reps: int = 3,
    seed: int = 42,
    machine: str = "summit",
    out: Optional[str] = DEFAULT_OUT,
) -> Dict[str, object]:
    """Run all stages; returns (and optionally writes) the JSON record."""
    from repro.core.driver import run_benchmark
    from repro.core.hpl_dist import HplExecutor, solve_hpl_distributed

    mach = get_machine(machine)
    cfg = BenchmarkConfig(
        n=n, block=block, machine=mach, p_rows=grid, p_cols=grid, seed=seed
    )
    m = HplAiMatrix(n, seed)
    b = block
    stages: List[StageResult] = []

    # -- LCG fill: cold (generator) vs warm (tile cache) -------------------
    def fill_cold():
        clear_tile_cache()
        _bands(m, b)

    def fill_warm():
        _bands(m, b)

    stages.append(_timed(fill_cold, reps, "lcg_fill_cold"))
    _bands(m, b)  # ensure warm
    stages.append(_timed(fill_warm, reps, "lcg_fill_warm"))

    # -- panel factorization + trailing update on a 1x1 grid ---------------
    cfg1 = BenchmarkConfig(
        n=n, block=block, machine=mach, p_rows=1, p_cols=1, seed=seed
    )
    ex = HplExecutor(cfg1, 0, 0, 0)
    ex.fill_local()
    pristine = ex.local.copy()

    def panel_factor():
        # The HPL-AI matrix is diagonally dominant, so the pivot row is
        # the diagonal: the stage exercises pivot search + rank-1 update
        # without the comm machinery.
        ex.local[:] = pristine
        lo, hi = ex.panel_col_range(0)
        for col in range(b):
            val, row = ex.local_pivot_candidate(col, col)
            seg = ex.get_row_segment(row, lo, hi)
            ex.scale_and_update_panel(col, col + 1, seg, val, lo, hi)

    stages.append(_timed(panel_factor, reps, "panel_factor"))

    # Trailing update with real panels from step 0.
    panel_factor()
    diag = ex.extract_diag(0)
    ex.trsm_row_panel(0, diag)
    l_panel = ex.extract_l_panel(0)
    u_panel = ex.extract_u_panel(0)
    after_panel = ex.local.copy()

    def trailing_update():
        ex.local[:] = after_panel
        ex.gemm_trailing(0, l_panel, u_panel)

    stages.append(_timed(trailing_update, reps, "trailing_update"))

    # -- IR residual sweep (band-wise r = b - A x, warm cache) --------------
    rhs = m.rhs()
    x_guess = rhs.copy()  # any vector exercises the same data path

    def ir_residual():
        r = rhs.copy()
        for g in range(n // b):
            band = m.block(g * b, (g + 1) * b, 0, n)
            r[g * b:(g + 1) * b] -= band @ x_guess
        return {"residual_inf": float(np.max(np.abs(r)))}

    stages.append(_timed(ir_residual, reps, "ir_sweep"))

    # -- end to end ---------------------------------------------------------
    def end_to_end_hpl():
        clear_tile_cache()
        res = solve_hpl_distributed(cfg)
        ipiv = np.asarray(res["ipiv"], dtype=np.int64)
        return {
            "x_sha256": _sha16(res["x"]),
            "ipiv_sha256": _sha16(ipiv),
            "residual_norm": res["residual_norm"],
            "t_virtual_s": round(res["t_total"], 6),
        }

    stages.append(_timed(end_to_end_hpl, max(1, reps - 1), "end_to_end_hpl"))

    def end_to_end_hplai():
        clear_tile_cache()
        res = run_benchmark(cfg, exact=True)
        return {
            "x_sha256": _sha16(res.x),
            "ir_converged": bool(res.ir_converged),
            "t_virtual_s": round(res.elapsed, 6),
        }

    stages.append(
        _timed(end_to_end_hplai, max(1, reps - 1), "end_to_end_hplai")
    )

    hpl_stage = next(s for s in stages if s.name == "end_to_end_hpl")
    record: Dict[str, object] = {
        "schema": SCHEMA,
        "config": {
            "n": n, "block": block, "grid": grid, "reps": reps,
            "seed": seed, "machine": mach.name,
        },
        "results": [s.to_record() for s in stages],
        "reference": {
            "x_sha256": hpl_stage.extra.get("x_sha256"),
            "ipiv_sha256": hpl_stage.extra.get("ipiv_sha256"),
            "residual_norm": hpl_stage.extra.get("residual_norm"),
        },
        "tile_cache": tile_cache().stats(),
    }
    if out:
        write_record(record, out)
    return record


def write_record(record: Dict[str, object], out: str) -> str:
    """Write a hotpaths record, folding in one step of history.

    The write is atomic (temp file in the same directory + rename): the
    record is the ``--against`` CI gate's baseline, so a crash mid-write
    must leave the previous baseline intact rather than a truncated
    file.  Returns the path written.
    """
    prev = _previous_record(out)
    if prev is not None:
        record["previous"] = prev
    return atomic_write_text(out, json.dumps(record, indent=2) + "\n")


def load_record(path: str = DEFAULT_OUT) -> Optional[Dict[str, object]]:
    """Load a hotpaths record, honouring the legacy root-level location.

    Asking for the default path falls back to :data:`LEGACY_OUT` when
    the results directory has no record yet, so baselines written by
    older checkouts keep working as ``--against`` targets.
    """
    candidates = [Path(path)]
    if path == DEFAULT_OUT:
        candidates.append(Path(LEGACY_OUT))
    for p in candidates:
        if not p.exists():
            continue
        try:
            rec = json.loads(p.read_text())
        except (OSError, ValueError):
            continue
        if rec.get("schema") == SCHEMA:
            return rec
    return None


def _previous_record(out: str) -> Optional[Dict[str, object]]:
    """Summarize an existing record so the file keeps one step of history."""
    old = load_record(out)
    if old is None:
        return None
    return {
        "config": old.get("config"),
        "results": old.get("results"),
        "reference": old.get("reference"),
    }


def render_hotpaths(record: Dict[str, object]) -> str:
    """ASCII table of a hotpaths record."""
    from repro.bench.reporting import render_records

    cfg = record["config"]
    title = (
        f"hot-path benchmark (n={cfg['n']}, b={cfg['block']}, "
        f"grid={cfg['grid']}x{cfg['grid']}, {cfg['machine']})"
    )
    rows = [
        {k: r.get(k, "") for k in ("stage", "reps", "mean_s", "min_s", "max_s")}
        for r in record["results"]
    ]
    return render_records(rows, title=title, float_fmt="{:.4f}")
