"""Warm-up strategies and run-series projection (Finding 10 / Fig 12).

    "the suggested strategy to warm up Summit is with a full run of the
    mini-benchmark to improve potential file system caching issues for
    binaries and dynamic libraries.  Conversely, the strategy to warm up
    Frontier, if one has to, is to embed the small GEMM kernels at the
    beginning of the run."

:func:`plan_warmup` returns the machine-appropriate plan;
:func:`project_run_series` reproduces Fig 12's six-consecutive-runs
experiment by combining the warm-up model with a run estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.machine.variability import WarmupModel


@dataclass(frozen=True)
class WarmupPlan:
    """A machine-specific warm-up recipe."""

    machine: str
    strategy: str
    description: str
    #: extra wall-clock the warm-up itself costs (seconds)
    overhead_s: float
    #: first-run speed multiplier without / with the warm-up
    cold_multiplier: float
    warmed_multiplier: float

    @property
    def worthwhile_above_s(self) -> float:
        """Run length above which the warm-up pays for itself.

        Solving ``T/cold = T/warm + overhead`` for T.
        """
        gain = 1.0 / self.cold_multiplier - 1.0 / self.warmed_multiplier
        if gain <= 0:
            return float("inf")
        return self.overhead_s / gain


def warmup_style(machine_name: str) -> str:
    """Map a machine name to a WarmupModel style ('generic' if unknown)."""
    return machine_name if machine_name in ("summit", "frontier") else "generic"


def plan_warmup(machine: MachineSpec) -> WarmupPlan:
    """Return the paper's recommended warm-up for a machine."""
    wm = WarmupModel(machine.name) if machine.name in ("summit", "frontier") else None
    if machine.name == "summit":
        return WarmupPlan(
            machine="summit",
            strategy="full-mini-benchmark",
            description=(
                "Run a full pass of the single-GCD mini-benchmark before "
                "the timed run so binaries and dynamic libraries are "
                "resident in the file-system cache; otherwise the entire "
                "first run is ~20% slower."
            ),
            overhead_s=120.0,
            cold_multiplier=wm.run_multiplier(0, warmed_up=False),
            warmed_multiplier=wm.run_multiplier(0, warmed_up=True),
        )
    if machine.name == "frontier":
        return WarmupPlan(
            machine="frontier",
            strategy="embedded-small-gemms",
            description=(
                "Embed small GEMM kernels at the start of the run; full "
                "warm-up runs are counter-productive here because "
                "power/frequency/thermal control settles *later* runs "
                "~0.3% below the early ones."
            ),
            overhead_s=5.0,
            cold_multiplier=1.0,  # Frontier's first runs are not slow
            warmed_multiplier=1.0,
        )
    # Unknown / custom machine: no measured warm-up behaviour, so
    # recommend the cheap embedded-GEMM warm-up with neutral multipliers.
    return WarmupPlan(
        machine=machine.name,
        strategy="embedded-small-gemms",
        description=(
            "No measured warm-up behaviour for this machine; embed small "
            "GEMM kernels at the start of the run and measure Fig-12 "
            "style consecutive runs to characterize it."
        ),
        overhead_s=5.0,
        cold_multiplier=1.0,
        warmed_multiplier=1.0,
    )


def project_run_series(
    machine: MachineSpec,
    base_elapsed_s: float,
    num_runs: int = 6,
    warmed_up: bool = False,
) -> List[Dict[str, float]]:
    """Fig 12: elapsed time & relative speed of consecutive batch runs.

    ``base_elapsed_s`` is the steady-state run time (e.g. from
    :func:`repro.model.estimate_run`).
    """
    if base_elapsed_s <= 0:
        raise ConfigurationError(
            f"base_elapsed_s must be positive, got {base_elapsed_s}"
        )
    wm = WarmupModel(warmup_style(machine.name))
    series = []
    for i in range(num_runs):
        mult = wm.run_multiplier(i, warmed_up=warmed_up)
        series.append(
            {
                "run": i + 1,
                "speed_multiplier": mult,
                "elapsed_s": base_elapsed_s / mult,
                "relative_perf": mult,
            }
        )
    return series
