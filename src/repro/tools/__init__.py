"""Operational tooling for leadership-scale runs (paper Section VI-B).

Three best practices the paper codifies, as runnable workflows:

- **slow-node identification** (:mod:`repro.tools.slownode`) — a
  mini-benchmark that scans every GCD with a single-GPU LU factorization
  and an MPI-style aggregation, ranks outliers and recommends an
  exclusion list;
- **warm-up** (:mod:`repro.tools.warmup`) — machine-specific warm-up
  strategies (Finding 10) with a projected run-series (Fig 12);
- **progress monitoring** (:mod:`repro.tools.monitor`) — per-component
  progress reports against reference rates, power tracking, and an
  early-termination watchdog for abnormal runs (e.g. fabric hangs).
"""

from repro.tools.slownode import MiniBenchmark, ScanReport, scan_fleet
from repro.tools.warmup import WarmupPlan, plan_warmup, project_run_series
from repro.tools.monitor import PowerModel, ProgressMonitor, ProgressReport

__all__ = [
    "MiniBenchmark",
    "ScanReport",
    "scan_fleet",
    "WarmupPlan",
    "plan_warmup",
    "project_run_series",
    "PowerModel",
    "ProgressMonitor",
    "ProgressReport",
]
