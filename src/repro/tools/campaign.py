"""Achievement-run campaigns: the paper's record-run workflow, end to end.

Section VI-B describes how the exascale numbers were actually obtained:
scan the fleet and exclude slow nodes, warm the machine up the right way,
launch several consecutive runs inside one batch job, monitor progress,
and report the best run.  :func:`run_campaign` composes those pieces —
the fleet model, the scanner, the warm-up model, and the analytic run
estimator — into one reproducible workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError
from repro.machine.variability import GcdFleet, WarmupModel
from repro.model.perf_model import AnalyticResult, estimate_run
from repro.tools.slownode import ScanReport, scan_fleet
from repro.tools.warmup import WarmupPlan, plan_warmup, warmup_style
from repro.util.format import format_flops, render_table


@dataclass
class CampaignRun:
    """One run within the batch job."""

    index: int
    speed_multiplier: float
    elapsed_s: float
    gflops_per_gcd: float
    total_flops_per_s: float


@dataclass
class CampaignResult:
    """Outcome of a full record-run campaign."""

    config: BenchmarkConfig
    scan: Optional[ScanReport]
    warmup: WarmupPlan
    runs: List[CampaignRun] = field(default_factory=list)
    #: True only when the scan's exclusions were actually applied to the
    #: fleet that hosted the runs; False when exclusion would have left
    #: fewer GCDs than the job needs and the untrimmed fleet ran instead.
    exclusion_applied: bool = False

    @property
    def best(self) -> CampaignRun:
        return max(self.runs, key=lambda r: r.total_flops_per_s)

    @property
    def variability(self) -> float:
        """Max fractional spread across the (post-first) runs."""
        rates = [r.total_flops_per_s for r in self.runs[1:]] or [
            self.runs[0].total_flops_per_s
        ]
        return (max(rates) - min(rates)) / max(rates)

    def render(self) -> str:
        """ASCII table of the campaign's runs (best flagged)."""
        rows = [
            [
                r.index + 1,
                f"{r.speed_multiplier:.4f}",
                f"{r.elapsed_s:.1f}",
                format_flops(r.total_flops_per_s),
                "BEST" if r is self.best else "",
            ]
            for r in self.runs
        ]
        title = (
            f"campaign on {self.config.machine.name}: N={self.config.n:,}, "
            f"{self.config.num_ranks} GCDs"
        )
        if self.scan is not None:
            if self.exclusion_applied:
                title += (
                    f"; excluded {len(self.scan.slow_nodes)} slow node(s) "
                    f"(x{self.scan.projected_speedup:.3f})"
                )
            else:
                title += (
                    f"; scan flagged {len(self.scan.slow_nodes)} slow "
                    f"node(s) but exclusion would leave fewer than "
                    f"{self.config.num_ranks} GCDs — ran the untrimmed fleet"
                )
        return render_table(
            ["run", "speed", "elapsed_s", "throughput", ""], rows, title=title
        )


def run_campaign(
    cfg: BenchmarkConfig,
    fleet: Optional[GcdFleet] = None,
    num_runs: int = 3,
    exclude_slow_nodes: bool = True,
    do_warmup: bool = True,
    scenario=None,
) -> CampaignResult:
    """Execute a record-run campaign against the analytic model.

    Parameters
    ----------
    cfg:
        The run configuration (use the achievement-run presets from
        :mod:`repro.bench.figures` for the paper's numbers).
    fleet:
        GCD fleet; defaults to a seeded fleet of the campaign's size.
        The fleet should be *larger* than the run needs so exclusion has
        spares to draw on.
    num_runs:
        Consecutive runs inside the batch job (the paper used six for
        Fig 12).
    exclude_slow_nodes / do_warmup:
        Toggle the two Section VI-B best practices (for ablation).
    scenario:
        Optional :class:`~repro.scenario.Scenario`: its effective
        pipeline multiplier (the composed schedule's gating rate)
        degrades every run of the campaign on top of the fleet draw and
        warm-up — "what does the record attempt look like if rank 12
        limps mid-run?" is one flag.
    """
    if num_runs < 1:
        raise ConfigurationError(f"num_runs must be >= 1, got {num_runs}")
    scenario_mult = 1.0
    if scenario is not None:
        from repro.scenario.compile import compile_scenario

        scenario_mult = compile_scenario(scenario, cfg).pipeline_multiplier
    if fleet is None:
        fleet = GcdFleet(cfg.num_ranks + 4 * cfg.machine.node.gcds_per_node)
    if fleet.num_gcds < cfg.num_ranks:
        raise ConfigurationError(
            f"fleet of {fleet.num_gcds} GCDs cannot host {cfg.num_ranks} ranks"
        )

    scan = None
    effective = fleet
    exclusion_applied = False
    if exclude_slow_nodes:
        scan = scan_fleet(fleet, cfg.machine)
        q = cfg.machine.node.gcds_per_node
        excluded = [
            g for node in scan.slow_nodes
            for g in range(node * q, (node + 1) * q)
            if g < fleet.num_gcds
        ]
        trimmed = fleet.exclude(excluded) if excluded else fleet
        if trimmed.num_gcds >= cfg.num_ranks:
            effective = trimmed
            exclusion_applied = True
    # The slowest GCD actually placed in the job gates the pipeline.
    # Without a scan, the scheduler places the job blindly (the GCDs'
    # speeds are unknown until probed), so the allocation is arbitrary;
    # the scan's whole value is removing the outliers from the pool.
    placed = effective.multipliers[: cfg.num_ranks]
    pipeline = float(placed.min())

    warmup = plan_warmup(cfg.machine)
    wm = WarmupModel(warmup_style(cfg.machine.name))

    runs: List[CampaignRun] = []
    for i in range(num_runs):
        speed = (
            pipeline * scenario_mult * wm.run_multiplier(i, warmed_up=do_warmup)
        )
        res: AnalyticResult = estimate_run(cfg, pipeline_multiplier=speed)
        runs.append(
            CampaignRun(
                index=i,
                speed_multiplier=speed,
                elapsed_s=res.elapsed,
                gflops_per_gcd=res.gflops_per_gcd,
                total_flops_per_s=res.total_flops_per_s,
            )
        )
    return CampaignResult(
        config=cfg, scan=scan, warmup=warmup, runs=runs,
        exclusion_applied=exclusion_applied,
    )
