"""Slow-GCD identification mini-benchmark (paper Section VI-B).

    "Using a mini-benchmark code, we scan through the GCDs, and thereby
    whole nodes, to exclude them from scaling runs.  The mini-benchmark
    code is implemented with a single GPU LU factorization and an MPI
    aggregator to identify the slow GCDs."

:func:`scan_fleet` runs a single-GCD LU mini-benchmark on every GCD of a
(simulated) fleet, aggregates the per-GCD times, flags outliers relative
to the fleet median, and — because a single slow GCD stalls the whole
bulk-synchronous pipeline — quantifies the projected speed-up from
excluding the flagged nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.machine.variability import GcdFleet
from repro.util import flops as fl
from repro.util.format import render_table


def flag_outliers(times, threshold: float):
    """Flag entries slower than the fleet median by more than ``threshold``.

    Returns ``(slow_ids, median, cutoff)``.  Shared between the GCD
    scan below and the trace-analysis straggler ranking
    (:mod:`repro.obs.analysis.imbalance`) so both flag "slow" the same
    way the paper's mini-benchmark aggregator does.
    """
    if not 0 < threshold < 1:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    times = np.asarray(times, dtype=float)
    median = float(np.median(times)) if times.size else 0.0
    cutoff = median * (1.0 + threshold)
    slow = [int(g) for g in np.nonzero(times > cutoff)[0]]
    return slow, median, cutoff


@dataclass(frozen=True)
class MiniBenchmark:
    """The single-GCD LU probe: a fixed-size unpivoted factorization.

    ``n`` is sized so the probe is GEMM-bound (sensitive to the same
    silicon limits as HPL-AI) yet fast enough to sweep a whole machine.
    """

    machine: MachineSpec
    n: int = 8192
    block: int = 512

    def nominal_seconds(self) -> float:
        """Probe runtime on a perfect (multiplier 1.0) GCD."""
        km = self.machine.gpu_kernels
        total = 0.0
        nb = self.n // self.block
        for k in range(nb):
            trailing = self.n - (k + 1) * self.block
            total += km.getrf_time(self.block)
            total += 2 * km.trsm_time(self.block, trailing)
            total += km.gemm_time(trailing, trailing, self.block, lda=self.n)
        return total

    def measure(self, multiplier: float) -> float:
        """Probe runtime on a GCD with the given speed multiplier."""
        if multiplier <= 0:
            raise ConfigurationError(
                f"speed multiplier must be positive, got {multiplier}"
            )
        return self.nominal_seconds() / multiplier


@dataclass
class ScanReport:
    """Result of a fleet scan."""

    probe: MiniBenchmark
    times: np.ndarray
    median_s: float
    threshold_s: float
    slow_gcds: List[int]
    slow_nodes: List[int]
    gcds_per_node: int
    #: fleet speed (slowest surviving GCD) before/after exclusion
    pipeline_before: float
    pipeline_after: float

    @property
    def max_variation(self) -> float:
        """Max fractional spread between fastest and slowest GCD.

        The paper observed ~5% on Frontier.
        """
        return float((self.times.max() - self.times.min()) / self.times.min())

    @property
    def projected_speedup(self) -> float:
        """Run-time factor gained by excluding the flagged nodes."""
        return self.pipeline_after / self.pipeline_before

    def render(self, top: int = 10) -> str:
        """ASCII table of the slowest GCDs and the exclusion verdicts."""
        order = np.argsort(self.times)[::-1]
        rows = [
            [int(g), int(g) // self.gcds_per_node,
             f"{self.times[g]:.4f}",
             f"{self.times[g] / self.median_s - 1.0:+.2%}",
             "EXCLUDE" if int(g) in set(self.slow_gcds) else ""]
            for g in order[:top]
        ]
        return render_table(
            ["gcd", "node", "probe_s", "vs median", "action"],
            rows,
            title=(
                f"GCD scan: {len(self.times)} GCDs, max variation "
                f"{self.max_variation:.1%}, excluding {len(self.slow_nodes)} "
                f"node(s) -> x{self.projected_speedup:.3f} projected"
            ),
        )


def scan_fleet(
    fleet: GcdFleet,
    machine: MachineSpec,
    threshold: float = 0.02,
    probe: MiniBenchmark | None = None,
) -> ScanReport:
    """Scan every GCD with the mini-benchmark and flag slow outliers.

    A GCD is flagged when its probe time exceeds the fleet median by
    more than ``threshold`` (2% default — conservative enough to catch
    the ~5% outliers without trimming healthy silicon).  Whole nodes
    containing a flagged GCD are excluded, mirroring the paper's
    node-granularity scheduling.
    """
    probe = probe or MiniBenchmark(machine)
    nominal = probe.nominal_seconds()
    times = nominal / fleet.multipliers
    slow, median, cutoff = flag_outliers(times, threshold)
    q = machine.node.gcds_per_node
    slow_nodes = sorted({g // q for g in slow})
    # Excluding a node removes all its GCDs.
    excluded_gcds = [
        g for node in slow_nodes for g in range(node * q, (node + 1) * q)
        if g < fleet.num_gcds
    ]
    trimmed = fleet.exclude(excluded_gcds) if excluded_gcds else fleet
    return ScanReport(
        probe=probe,
        times=times,
        median_s=median,
        threshold_s=cutoff,
        slow_gcds=slow,
        slow_nodes=slow_nodes,
        gcds_per_node=q,
        pipeline_before=fleet.pipeline_multiplier(),
        pipeline_after=trimmed.pipeline_multiplier(),
    )
