"""Progress monitoring and early termination (paper Section VI-B).

    "Our benchmark code has a detailed progress report for each
    component at definable iterations.  We compare each component's
    performance to our previously recorded data ... We quickly terminate
    runs that incur a significant slowdown in performance."

:class:`ProgressMonitor` consumes the per-iteration trace the driver
records, compares each component against reference expectations (from
the analytic model), and raises
:class:`~repro.errors.EarlyTerminationError` when the run has degraded
beyond tolerance for several consecutive report intervals — the
mechanism that would have caught the paper's Frontier fabric hangs.
:class:`PowerModel` integrates a simple per-GCD power draw over the
phase timeline, supporting the "monitor the power utilization" practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import BenchmarkConfig
from repro.errors import ConfigurationError, EarlyTerminationError
from repro.machine.topology import CommCosts
from repro.model.perf_model import estimate_iteration
from repro.obs import context as obs_context
from repro.util.format import format_seconds, render_table


@dataclass
class ProgressReport:
    """One report interval's health summary."""

    iteration: int
    measured_s: float
    expected_s: float
    slowdown: float
    healthy: bool


@dataclass
class PowerModel:
    """Energy accounting from phase times.

    Per-GCD draw: ``busy_watts`` while computing, ``idle_watts`` while
    waiting on communication.  Defaults approximate a V100/MI250X GCD
    envelope.
    """

    busy_watts: float = 300.0
    idle_watts: float = 90.0

    def energy_joules(self, busy_s: float, idle_s: float) -> float:
        """Energy of one GCD given busy/idle phase durations."""
        if busy_s < 0 or idle_s < 0:
            raise ConfigurationError("phase times must be non-negative")
        return busy_s * self.busy_watts + idle_s * self.idle_watts

    def run_energy_mj(self, stats, elapsed: float) -> float:
        """Fleet energy (MJ) from engine per-rank stats."""
        total = 0.0
        for st in stats:
            busy = st.total_compute
            idle = max(elapsed - busy, 0.0)
            total += self.energy_joules(busy, idle)
        return total / 1e6

    def energy_from_spans(self, spans, elapsed: float, num_ranks: int) -> float:
        """Fleet energy (MJ) integrated over a span/timeline stream.

        Accepts :class:`repro.obs.Span` objects or the legacy
        ``(rank, start, end, kind)`` tuples; non-wait spans count as
        busy, everything else (including an entirely empty timeline) is
        idle draw for the whole ``elapsed`` window.
        """
        if elapsed < 0:
            raise ConfigurationError("elapsed must be non-negative")
        if num_ranks < 1:
            raise ConfigurationError("num_ranks must be >= 1")
        busy: Dict[int, float] = {}
        for s in spans:
            if hasattr(s, "rank"):
                rank, dur, kind = s.rank, s.duration, s.name
            else:
                rank, start, end, kind = s
                dur = end - start
            if not kind.startswith("wait") and kind != "comm_post":
                busy[rank] = busy.get(rank, 0.0) + dur
        total = 0.0
        for r in range(num_ranks):
            b = min(busy.get(r, 0.0), elapsed)
            total += self.energy_joules(b, elapsed - b)
        return total / 1e6


class ProgressMonitor:
    """Watchdog over the factorization's per-iteration trace.

    Parameters
    ----------
    cfg:
        The run configuration (used to derive expected per-iteration
        times from the analytic model).
    tolerance:
        Acceptable fractional slowdown vs expectation before an interval
        is unhealthy (the model is a guideline, so this is generous).
    patience:
        Consecutive unhealthy report intervals before termination.
    report_every:
        Report interval in iterations ("definable iterations").
    """

    def __init__(
        self,
        cfg: BenchmarkConfig,
        tolerance: float = 0.5,
        patience: int = 3,
        report_every: int = 10,
    ) -> None:
        if tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        if patience < 1 or report_every < 1:
            raise ConfigurationError("patience and report_every must be >= 1")
        self.cfg = cfg
        self.tolerance = tolerance
        self.patience = patience
        self.report_every = report_every
        self._costs = CommCosts(
            cfg.machine, port_binding=cfg.port_binding, gpu_aware=cfg.gpu_aware
        )
        self.reports: List[ProgressReport] = []
        self._window: List[float] = []
        self._unhealthy_streak = 0

    def expected_iteration_s(self, k: int) -> float:
        """Model-expected wall time of iteration k."""
        return estimate_iteration(self.cfg, self._costs, k).total

    def observe(self, k: int, measured_s: float) -> Optional[ProgressReport]:
        """Feed one iteration's measured wall time.

        Returns a :class:`ProgressReport` at report boundaries (else
        None); raises :class:`EarlyTerminationError` once ``patience``
        consecutive reports are unhealthy.
        """
        if measured_s < 0:
            raise ConfigurationError(f"measured time must be >= 0, got {measured_s}")
        self._window.append(measured_s)
        if (k + 1) % self.report_every != 0 and k + 1 != self.cfg.num_blocks:
            return None
        start = k + 1 - len(self._window)
        expected = sum(
            self.expected_iteration_s(i) for i in range(start, k + 1)
        )
        measured = sum(self._window)
        self._window.clear()
        slowdown = measured / expected - 1.0 if expected > 0 else 0.0
        healthy = slowdown <= self.tolerance
        report = ProgressReport(
            iteration=k,
            measured_s=measured,
            expected_s=expected,
            slowdown=slowdown,
            healthy=healthy,
        )
        self.reports.append(report)
        obs = obs_context.current()
        if obs.enabled:
            m = obs.metrics
            m.gauge("monitor.slowdown").set(slowdown)
            m.counter("monitor.reports").inc()
            if not healthy:
                m.counter("monitor.unhealthy_reports").inc()
        if healthy:
            self._unhealthy_streak = 0
        else:
            self._unhealthy_streak += 1
            if self._unhealthy_streak >= self.patience:
                raise EarlyTerminationError(
                    f"run degraded {slowdown:+.0%} vs expectation for "
                    f"{self._unhealthy_streak} consecutive report intervals "
                    "(suspected fabric hang or slow node); terminating to "
                    "save node hours",
                    iteration=k,
                )
        return report

    def watch_trace(self, trace: List[dict]) -> List[ProgressReport]:
        """Run the watchdog over a recorded driver trace."""
        for entry in trace:
            total = entry.get("panel", 0.0) + entry.get("gemm", 0.0) + entry.get(
                "recv", 0.0
            )
            self.observe(entry["k"], total)
        return self.reports

    def watch_result(self, result) -> List[ProgressReport]:
        """Run the watchdog over a finished run's recorded trace.

        The unified-telemetry entry point: takes a
        :class:`~repro.core.driver.RunResult` (whose per-iteration trace
        the driver recorded) instead of a raw dict list.
        """
        if not getattr(result, "trace", None):
            raise ConfigurationError(
                "result has no per-iteration trace (collect_trace=False?)"
            )
        return self.watch_trace(result.trace)

    def render(self) -> str:
        """ASCII table of all report intervals."""
        rows = [
            [
                r.iteration,
                format_seconds(r.measured_s),
                format_seconds(r.expected_s),
                f"{r.slowdown:+.1%}",
                "ok" if r.healthy else "SLOW",
            ]
            for r in self.reports
        ]
        return render_table(
            ["iter", "measured", "expected", "slowdown", "health"],
            rows,
            title=f"progress report ({self.cfg.machine.name}, "
            f"N={self.cfg.n}, B={self.cfg.block})",
        )
