"""Thin setup.py shim.

Kept only so legacy editable installs (``pip install -e . --no-use-pep517``)
work in offline environments lacking the ``wheel`` package; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
