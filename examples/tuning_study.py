#!/usr/bin/env python
"""The paper's tuning methodology on a simulated machine (Figs 4, 8).

Walks the three knobs Section V tunes — block size B, broadcast
algorithm, node-local grid — and shows how the optimum differs between
Summit (V100 + Spectrum MPI on a fat tree) and Frontier (MI250X + young
Slingshot stack), ending with each machine's best configuration.

Run:  python examples/tuning_study.py
"""

from repro.bench.reporting import render_records
from repro.core.config import BenchmarkConfig
from repro.machine import FRONTIER, SUMMIT
from repro.model.perf_model import estimate_run
from repro.model.tuner import sweep_block_sizes, sweep_node_grids


def best(rows, key="gflops_per_gcd"):
    return max(rows, key=lambda r: r[key])


def main() -> None:
    # -- 1. block size -----------------------------------------------------
    summit_b = sweep_block_sizes(
        SUMMIT, n_local=61440, p=54,
        blocks=[256, 512, 768, 1024, 1280, 2048, 3072],
        q_rows=3, q_cols=2, bcast_algorithm="bcast",
    )
    frontier_b = sweep_block_sizes(
        FRONTIER, n_local=119808, p=32,
        blocks=[512, 768, 1024, 1536, 2304, 3072],
        q_rows=2, q_cols=4, bcast_algorithm="ring2m",
    )
    print(render_records(summit_b, title="Summit: B sweep at 2916 GCDs"))
    print()
    print(render_records(frontier_b, title="Frontier: B sweep at 1024 GCDs"))
    print(f"\n-> optimal B: Summit {best(summit_b)['B']} (paper: 768), "
          f"Frontier {best(frontier_b)['B']} (paper: 3072)")

    # -- 2. broadcast algorithm -------------------------------------------
    print("\nbroadcast strategies (GFLOPS/GCD):")
    for machine, nl, b, p, qr, qc in [
        (SUMMIT, 61440, 768, 54, 3, 2),
        (FRONTIER, 119808, 3072, 32, 2, 4),
    ]:
        scores = {}
        for algo in ("bcast", "ibcast", "ring1", "ring1m", "ring2m"):
            cfg = BenchmarkConfig(
                n=nl * p, block=b, machine=machine, p_rows=p, p_cols=p,
                q_rows=qr, q_cols=qc, bcast_algorithm=algo,
            )
            scores[algo] = estimate_run(cfg).gflops_per_gcd
        winner = max(scores, key=scores.get)
        line = "  ".join(f"{a}={v:,.0f}" for a, v in scores.items())
        print(f"  {machine.name:>9}: {line}")
        print(f"  {'':>9}  -> winner: {winner} "
              f"(paper: {'bcast' if machine is SUMMIT else 'ring2m'})")

    # -- 3. node-local grid -----------------------------------------------
    print()
    summit_g = sweep_node_grids(SUMMIT, 61440, 768, 54, "bcast")
    frontier_g = sweep_node_grids(FRONTIER, 119808, 3072, 32, "ring2m")
    print(render_records(summit_g, title="Summit: node-local grid sweep"))
    print()
    print(render_records(frontier_g, title="Frontier: node-local grid sweep"))
    print(f"\n-> best grids: Summit {best(summit_g)['grid']} "
          f"(paper: 3x2/2x3), Frontier {best(frontier_g)['grid']} "
          f"(paper: 2x4/4x2)")


if __name__ == "__main__":
    main()
