#!/usr/bin/env python
"""Operational best practices: slow-node hunting and warm-up (Section VI-B).

1. Scan a 1024-GCD fleet with the single-GCD LU mini-benchmark and find
   the manufacturing-variability outliers ("approximately 5% maximum
   variation between GCDs on Frontier").
2. Quantify how much a single slow GCD costs a bulk-synchronous run, and
   the speed-up from excluding the flagged nodes.
3. Plan the machine-appropriate warm-up and project six consecutive runs
   (Fig 12).

Run:  python examples/slow_node_hunt.py
"""

from repro.bench.reporting import render_records
from repro.core.config import BenchmarkConfig
from repro.machine import FRONTIER, SUMMIT, GcdFleet
from repro.model.perf_model import estimate_run
from repro.tools import plan_warmup, project_run_series, scan_fleet


def main() -> None:
    # -- 1. scan ---------------------------------------------------------
    fleet = GcdFleet(1024, seed=2022)
    report = scan_fleet(fleet, FRONTIER)
    print(report.render(top=12))

    # -- 2. impact on a run -------------------------------------------------
    cfg = BenchmarkConfig(
        n=119808 * 32, block=3072, machine=FRONTIER,
        p_rows=32, p_cols=32, q_rows=2, q_cols=4, bcast_algorithm="ring2m",
    )
    before = estimate_run(cfg, pipeline_multiplier=report.pipeline_before)
    after = estimate_run(cfg, pipeline_multiplier=report.pipeline_after)
    print(f"\n1024-GCD run with the raw fleet:      "
          f"{before.gflops_per_gcd:,.0f} GFLOPS/GCD")
    print(f"1024-GCD run after excluding nodes:   "
          f"{after.gflops_per_gcd:,.0f} GFLOPS/GCD  "
          f"(+{100 * (after.gflops_per_gcd / before.gflops_per_gcd - 1):.1f}%)")
    print("-> a single slow GCD gates every bulk-synchronous iteration; "
          "scan and exclude before achievement runs.")

    # -- 3. warm-up ------------------------------------------------------------
    for machine in (SUMMIT, FRONTIER):
        plan = plan_warmup(machine)
        print(f"\n{machine.name} warm-up strategy: {plan.strategy}")
        print(f"  {plan.description}")
        if plan.worthwhile_above_s != float("inf"):
            print(f"  pays for itself above {plan.worthwhile_above_s:.0f} s "
                  "of run time")
        series = project_run_series(machine, base_elapsed_s=1000.0)
        rows = [
            {"run": r["run"], "relative_perf_pct": 100 * r["relative_perf"]}
            for r in series
        ]
        print(render_records(rows, title=f"{machine.name}: six consecutive "
                                         "runs (Fig 12)"))


if __name__ == "__main__":
    main()
