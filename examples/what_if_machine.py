#!/usr/bin/env python
"""What-if projection: HPL-AI on a hypothetical next-generation system.

The paper's portability argument ("expected to be the case also for
Intel GPUs") invites the question: what would this benchmark do on a
machine that doesn't exist yet?  This example builds a plausible
"NextGen" system with :func:`repro.machine.custom.build_machine` —
roughly doubling Frontier's per-GCD FP16 rate and NIC bandwidth with a
mature software stack — retunes B and the broadcast for it, and projects
the achievable HPL-AI figure.

Run:  python examples/what_if_machine.py
"""

from repro.bench.reporting import render_records
from repro.core.config import BenchmarkConfig
from repro.machine.custom import build_machine
from repro.model.perf_model import estimate_run
from repro.model.tuner import sweep_block_sizes
from repro.util.format import format_flops


def main() -> None:
    nextgen = build_machine(
        name="NextGen",
        num_nodes=8192,
        gcds_per_node=8,
        fp16_tflops_per_gcd=300.0,
        fp64_tflops_per_gcd=55.0,
        gpu_memory_gib=96.0,
        nic_bw_gbs_per_node=50.0,
        gemm_efficiency=0.8,
        gemm_b_half=300.0,  # assume the BLAS matured: saturates early
        mature_mpi=True,
        hbm_bw_gbs=3000.0,
    )
    print(f"built machine: {nextgen.name} — {nextgen.total_gcds} GCDs, "
          f"{nextgen.node.fp16_tflops:.0f} TF FP16/node\n")

    # 1. Tune B for the new BLAS behaviour.
    nl = 9216 * 16  # ~85 GiB... keep fp32 local inside 96 GiB GPU
    nl = 138240  # 3072*45: ~76 GiB fp32
    rows = sweep_block_sizes(
        nextgen, n_local=nl, p=32,
        blocks=[512, 768, 1024, 1536, 2304, 3072],
        bcast_algorithm="bcast",
    )
    print(render_records(rows, title="NextGen: B sweep at 1024 GCDs"))
    best_b = max(rows, key=lambda r: r["gflops_per_gcd"])["B"]
    print(f"-> tuned B = {best_b} (the mature BLAS saturates much "
          "earlier than Frontier's rocBLAS did)\n")

    # 2. Broadcast choice on the mature stack.
    scores = {}
    for algo in ("bcast", "ring2m"):
        cfg = BenchmarkConfig(
            n=nl * 32, block=best_b, machine=nextgen, p_rows=32, p_cols=32,
            q_rows=2, q_cols=4, bcast_algorithm=algo,
        )
        scores[algo] = estimate_run(cfg).gflops_per_gcd
    winner = max(scores, key=scores.get)
    gap = 100 * (scores["ring2m"] / scores["bcast"] - 1)
    print(f"broadcast: bcast={scores['bcast']:,.0f} vs "
          f"ring2m={scores['ring2m']:,.0f} GFLOPS/GCD ({gap:+.1f}% for "
          f"rings) -> {winner}; a mature MPI shrinks Frontier's 20-34% "
          "ring advantage to noise, as on Summit\n")

    # 3. Full-machine projection.
    p = 248  # 248^2 = 61504 of 65536 GCDs
    cfg = BenchmarkConfig(
        n=nl * p, block=best_b, machine=nextgen, p_rows=p, p_cols=p,
        q_rows=2, q_cols=4, bcast_algorithm=winner,
    )
    res = estimate_run(cfg)
    print(f"full-machine projection: N = {cfg.n:,} on {cfg.num_ranks:,} "
          f"GCDs -> {format_flops(res.total_flops_per_s)}")
    print(f"  ({res.gflops_per_gcd / 1000:.1f} TF/GCD effective, "
          f"{100 * res.gflops_per_gcd / 1000 / 300:.0f}% of FP16 peak)")


if __name__ == "__main__":
    main()
