#!/usr/bin/env python
"""Reproduce the paper's exascale achievement runs (Fig 11).

Evaluates the analytic performance model at the exact configurations of
the paper's record runs — Summit (N ~ 10M over 26,244 GCDs) and ~40% of
Frontier (N = 20.6M over 29,584 GCDs) — plus the full-system Frontier
projection, and compares HPL-AI against the published HPL numbers (the
9.5x mixed-precision headline).

Run:  python examples/exascale_projection.py
"""

from repro.bench.figures import fig11_exascale_runs, hpl_vs_hplai
from repro.bench.reporting import render_records
from repro.core.config import BenchmarkConfig
from repro.machine import FRONTIER
from repro.model.perf_model import estimate_run
from repro.util.format import format_flops, format_seconds


def main() -> None:
    print(render_records(
        fig11_exascale_runs(),
        title="Fig 11: exascale achievement runs (model vs paper)",
        float_fmt="{:.3f}",
    ))
    print()
    print(render_records(
        hpl_vs_hplai(),
        title="Mixed precision vs double precision (HPL-AI / HPL)",
        float_fmt="{:.1f}",
    ))

    # Where does the time go at 29,584 GCDs?
    cfg = BenchmarkConfig(
        n=119808 * 172, block=3072, machine=FRONTIER,
        p_rows=172, p_cols=172, q_rows=4, q_cols=2,
        bcast_algorithm="ring2m",
    )
    res = estimate_run(cfg)
    print(f"\nFrontier achievement run anatomy "
          f"({format_flops(res.total_flops_per_s)} in "
          f"{format_seconds(res.elapsed)}):")
    for phase, seconds in sorted(res.breakdown.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / res.elapsed
        print(f"  {phase:>14}: {seconds:8.1f} s  ({share:4.1f}%)")


if __name__ == "__main__":
    main()
