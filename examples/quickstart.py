#!/usr/bin/env python
"""Quickstart: solve an HPL-AI system on a simulated distributed machine.

This example runs the *numerically exact* path: the full distributed
mixed-precision algorithm — FP32 panel factorization, FP16 trailing
updates, FP64 iterative refinement with on-the-fly matrix regeneration —
executes over a 2x2 virtual process grid with real data, while the
discrete-event engine simultaneously models how long the same run would
take on Frontier hardware.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HplAiMatrix, solve_hplai
from repro.precision import FP16, FP64, round_to
from repro.util.format import format_seconds

N, BLOCK, GRID = 512, 64, 2


def main() -> None:
    print(f"Solving an HPL-AI system: N={N}, B={BLOCK}, "
          f"{GRID}x{GRID} process grid (Frontier model)\n")

    res = solve_hplai(n=N, block=BLOCK, p_rows=GRID, p_cols=GRID,
                      machine="frontier")

    # -- numerics ---------------------------------------------------------
    matrix = HplAiMatrix(N, seed=42)
    a = matrix.dense()
    b = matrix.rhs()
    x_ref = np.linalg.solve(a, b)

    print("numerics:")
    print(f"  residual ||b - A x||_inf   = {res.residual_norm:.3e}")
    print(f"  error vs dense FP64 solve  = {np.max(np.abs(res.x - x_ref)):.3e}")
    print(f"  IR iterations to converge  = {res.ir_iterations}")

    # Why refinement is needed: the FP16-rounded matrix alone carries
    # ~2^-11 relative error per entry.
    fp16_error = np.max(np.abs(round_to(a, FP16) - a)) / np.max(np.abs(a))
    print(f"  FP16 storage error (rel)   = {fp16_error:.2e} "
          f"(vs FP64 eps = {FP64.eps:.2e})")

    # -- simulated performance ------------------------------------------------
    print("\nsimulated Frontier performance:")
    print(f"  factorization   {format_seconds(res.elapsed_factorization)}")
    print(f"  refinement      {format_seconds(res.elapsed_refinement)}")
    print(f"  per-GCD rate    {res.gflops_per_gcd:.1f} GFLOPS "
          "(tiny N: the GPUs are barely warmed up)")

    assert res.ir_converged, "refinement must converge to FP64 accuracy"
    print("\nOK: mixed precision + iterative refinement recovered "
          "double-precision accuracy.")


if __name__ == "__main__":
    main()
