#!/usr/bin/env python
"""Memory-size weak scaling (Fig 9), with an ASCII rendition of the plot.

Per-GCD memory stays constant while the machine grows; per-GCD
throughput first *rises* (the serial/refinement fraction shrinks) and
then flattens as broadcast traffic catches up — the paper's distinctive
weak-scaling shape, including superlinear parallel efficiency on Summit
with the tuned 3x2 node grid.

Run:  python examples/weak_scaling.py
"""

from repro.bench.figures import fig9_weak_scaling
from repro.bench.reporting import render_records


def ascii_chart(series, width=50):
    """Render {label: [(x, y), ...]} as a crude horizontal bar chart."""
    ymax = max(y for pts in series.values() for _x, y in pts)
    lines = []
    for label, pts in series.items():
        lines.append(f"{label}:")
        for x, y in pts:
            bar = "#" * max(1, int(width * y / ymax))
            lines.append(f"  {x:>6} GCDs |{bar} {y:,.0f}")
    return "\n".join(lines)


def main() -> None:
    rows = fig9_weak_scaling()
    print(render_records(rows, title="Fig 9: memory-size weak scaling"))

    series = {}
    for r in rows:
        series.setdefault(f"{r['machine']} {r['grid']}", []).append(
            (r["gcds"], r["gflops_per_gcd"])
        )
    print()
    print(ascii_chart(series))

    # Parallel efficiencies at the largest scale of each series.
    print("\nparallel efficiency at the largest simulated scale:")
    for label, pts in series.items():
        rec = [r for r in rows
               if f"{r['machine']} {r['grid']}" == label][-1]
        print(f"  {label:>14}: {rec['parallel_eff_pct']:.1f}% at "
              f"{rec['gcds']} GCDs")
    print("\n(paper: Summit 91.4% column-major / 104.6% tuned at 2916 GCDs; "
          "Frontier 92.2% at 16384 GCDs)")


if __name__ == "__main__":
    main()
