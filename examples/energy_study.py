#!/usr/bin/env python
"""Mixed-precision energy study (the paper's closing future-work question).

    "Of great interest would be investigating how mixed precision
    operations effects the energy profile required for various
    calculations.  One would expect that the improvements seen in
    performance would translate directly to energy utilization."

This example tests that expectation in the model: solve the same dense
system (i) with HPL-AI's FP16/FP32 + refinement and (ii) at pure FP64
HPL-style throughput, and integrate GCD power over each run.

Run:  python examples/energy_study.py
"""

from repro.core.config import BenchmarkConfig
from repro.core.hpl import hpl_gflops_per_gcd, hpl_time_model
from repro.machine import FRONTIER, SUMMIT
from repro.model.perf_model import estimate_run
from repro.tools.monitor import PowerModel
from repro.util.format import format_seconds


def study(machine, nl, block, p, qr, qc, algo):
    cfg = BenchmarkConfig(
        n=nl * p, block=block, machine=machine, p_rows=p, p_cols=p,
        q_rows=qr, q_cols=qc, bcast_algorithm=algo,
    )
    mixed = estimate_run(cfg)
    t_fp64 = hpl_time_model(machine, cfg.n, cfg.num_ranks)

    power = PowerModel(busy_watts=300.0, idle_watts=90.0)
    # Mixed: GEMM and friends keep the GCD busy; exposed comm idles it.
    busy = mixed.elapsed - mixed.breakdown["exposed_comm"]
    e_mixed = cfg.num_ranks * power.energy_joules(
        busy, mixed.breakdown["exposed_comm"]
    )
    # FP64 HPL: assume fully busy for its (much longer) duration.
    e_fp64 = cfg.num_ranks * power.energy_joules(t_fp64, 0.0)

    speedup = t_fp64 / mixed.elapsed
    energy_ratio = e_fp64 / e_mixed
    print(f"{machine.name}: N={cfg.n:,} on {cfg.num_ranks} GCDs")
    print(f"  mixed precision : {format_seconds(mixed.elapsed):>10}  "
          f"{e_mixed / 1e9:8.2f} GJ")
    print(f"  pure FP64 (HPL) : {format_seconds(t_fp64):>10}  "
          f"{e_fp64 / 1e9:8.2f} GJ")
    print(f"  speedup {speedup:5.1f}x -> energy saved {energy_ratio:5.1f}x  "
          f"(HPL per-GCD anchor: {hpl_gflops_per_gcd(machine):,.0f} GFLOPS)")
    print()
    return speedup, energy_ratio


def main() -> None:
    print("Does the mixed-precision speedup translate to energy?\n")
    s1, e1 = study(SUMMIT, 61440, 768, 54, 3, 2, "bcast")
    s2, e2 = study(FRONTIER, 119808, 3072, 32, 2, 4, "ring2m")
    print("Conclusion: energy savings track the speedup almost 1:1 "
          f"(speedup/energy ratios: {s1 / e1:.2f}, {s2 / e2:.2f}) — "
          "the paper's expectation holds in the model, slightly "
          "attenuated by communication-idle power.")


if __name__ == "__main__":
    main()
