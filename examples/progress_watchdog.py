#!/usr/bin/env python
"""Progress monitoring and early termination (Section VI-B).

    "We quickly terminate runs that incur a significant slowdown in
    performance. ... We observed several fabric hangs during this
    Frontier run which could have been shutdown by our early
    termination mechanism to save system resources."

This example runs a healthy 16-GCD Frontier simulation, replays its
per-iteration trace through the :class:`ProgressMonitor` watchdog, then
injects a mid-run fabric hang into the same trace and shows the watchdog
terminating the run — with the node-hours that saves.

Run:  python examples/progress_watchdog.py
"""

from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.errors import EarlyTerminationError
from repro.machine import FRONTIER
from repro.tools.monitor import ProgressMonitor


def main() -> None:
    cfg = BenchmarkConfig(
        n=3072 * 64, block=3072, machine=FRONTIER, p_rows=4, p_cols=4,
        q_rows=2, q_cols=4, bcast_algorithm="ring2m",
    )
    print(f"simulating a healthy run: N={cfg.n:,} on {cfg.num_ranks} GCDs...")
    res = simulate_run(cfg)
    print(f"  finished in {res.elapsed:.1f} virtual seconds "
          f"({res.gflops_per_gcd:,.0f} GFLOPS/GCD)\n")

    # -- healthy trace passes the watchdog --------------------------------
    monitor = ProgressMonitor(cfg, tolerance=0.8, patience=2, report_every=8)
    monitor.watch_trace(res.trace)
    print(monitor.render())
    print(f"\nhealthy run: {sum(r.healthy for r in monitor.reports)}/"
          f"{len(monitor.reports)} report intervals OK\n")

    # -- inject a fabric hang at 40% of the run ----------------------------------
    hang_at = int(0.4 * len(res.trace))
    hung_trace = []
    for entry in res.trace:
        e = dict(entry)
        if e["k"] >= hang_at:
            e["recv"] = e["recv"] + 0.5  # every iteration stalls 500 ms
        hung_trace.append(e)

    print(f"replaying the same run with a fabric hang from iteration "
          f"{hang_at}...")
    watchdog = ProgressMonitor(cfg, tolerance=0.8, patience=2, report_every=4)
    try:
        watchdog.watch_trace(hung_trace)
        print("watchdog missed the hang (unexpected)")
    except EarlyTerminationError as err:
        aborted_at = err.iteration
        # Node-hours saved: the remaining iterations would have crawled.
        remaining = [e for e in hung_trace if e["k"] > aborted_at]
        wasted = sum(e["panel"] + e["gemm"] + e["recv"] for e in remaining)
        print(f"  watchdog: {err}")
        print(f"  aborted at iteration {aborted_at} of {len(hung_trace)}")
        print(f"  saved ~{wasted * cfg.num_ranks / 3600:.2f} GCD-hours of a "
              "hung allocation")


if __name__ == "__main__":
    main()
