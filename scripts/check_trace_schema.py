#!/usr/bin/env python
"""Validate an exported Chrome-trace JSON against the documented schema.

Thin shim over :mod:`repro.analyze.checkers.trace_schema` — the check
now lives in the ``repro.analyze`` framework, so ``repro lint
trace.json [--require-layers]`` is the canonical entry point; this
script is kept for existing CI invocations and standalone use.

Usage::

    python scripts/check_trace_schema.py trace.json [--require-layers]

Exits 0 on success, 1 with a line per problem otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Standalone fallback: make the in-tree package importable when the
# caller has not set PYTHONPATH=src.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analyze.checkers.trace_schema import (  # noqa: E402
    REQUIRED_LAYERS,
    check_trace,
    load_strict_json,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="Chrome-trace JSON file to validate")
    parser.add_argument(
        "--require-layers", action="store_true",
        help=f"require spans from the {'/'.join(REQUIRED_LAYERS)} layers",
    )
    args = parser.parse_args(argv)

    try:
        doc = load_strict_json(args.path)
    except (ValueError, OSError) as exc:
        print(f"{args.path}: not strict JSON: {exc}", file=sys.stderr)
        return 1

    problems = check_trace(doc, require_layers=args.require_layers)
    if problems:
        for p in problems:
            print(f"{args.path}: {p}", file=sys.stderr)
        return 1
    n_spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"{args.path}: ok ({n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
