#!/usr/bin/env python
"""Validate an exported Chrome-trace JSON against the documented schema.

Usage::

    python scripts/check_trace_schema.py trace.json [--require-layers]

Checks (see docs/OBSERVABILITY.md):

- the file is *strict* JSON (no bare NaN/Infinity tokens);
- top level is an object with a ``traceEvents`` list and an
  ``otherData`` object carrying the schema version;
- every event has ``name``/``cat``/``ph``/``pid``/``tid``, phases are
  ``X`` (complete span) or ``M`` (metadata), and ``X`` events carry
  non-negative ``ts``/``dur`` microsecond numbers;
- with ``--require-layers``, spans from the ``engine``, ``executor``
  and ``comm`` layers must all be present (what any instrumented
  benchmark run produces).

Exits 0 on success, 1 with a line per problem otherwise.  Run in CI on
a tiny ``simulate_run`` export so exporter regressions fail fast.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: layers an instrumented benchmark run must emit spans from
REQUIRED_LAYERS = ("engine", "executor", "comm")

VALID_PHASES = {"X", "M", "C"}


def _fail_on_constant(token):
    raise ValueError(f"non-strict JSON token {token!r}")


def check_trace(doc: dict, require_layers: bool = False) -> list:
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' list is missing"]
    other = doc.get("otherData")
    if not isinstance(other, dict):
        problems.append("top-level 'otherData' object is missing")
    elif not isinstance(other.get("schema"), int):
        problems.append("otherData.schema version (int) is missing")

    cats = set()
    span_count = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key, types in (("name", str), ("ph", str),
                           ("pid", int), ("tid", int)):
            if not isinstance(ev.get(key), types):
                problems.append(f"{where}: missing/invalid {key!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(
                f"{where}: phase {ph!r} not in {sorted(VALID_PHASES)}"
            )
        if ph == "X":
            span_count += 1
            if not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: span missing 'cat'")
            else:
                cats.add(ev["cat"])
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {val!r}"
                    )
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"{where}: 'args' must be an object")

    if span_count == 0:
        problems.append("trace contains no 'X' (complete span) events")
    if require_layers:
        missing = [c for c in REQUIRED_LAYERS if c not in cats]
        if missing:
            problems.append(
                f"missing spans from required layer(s): {', '.join(missing)} "
                f"(found categories: {sorted(cats) or 'none'})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="Chrome-trace JSON file to validate")
    parser.add_argument(
        "--require-layers", action="store_true",
        help=f"require spans from the {'/'.join(REQUIRED_LAYERS)} layers",
    )
    args = parser.parse_args(argv)

    text = Path(args.path).read_text()
    try:
        doc = json.loads(text, parse_constant=_fail_on_constant)
    except ValueError as exc:
        print(f"{args.path}: not strict JSON: {exc}", file=sys.stderr)
        return 1

    problems = check_trace(doc, require_layers=args.require_layers)
    if problems:
        for p in problems:
            print(f"{args.path}: {p}", file=sys.stderr)
        return 1
    n_spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"{args.path}: ok ({n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
