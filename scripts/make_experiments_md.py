#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md (wrapper around repro.bench.report_md).

Invoke from the repository root:  python scripts/make_experiments_md.py
"""

from repro.bench.report_md import generate_experiments_markdown


def main() -> None:
    """Write EXPERIMENTS.md next to the current working directory."""
    text = generate_experiments_markdown()
    with open("EXPERIMENTS.md", "w") as fh:
        fh.write(text)
    print(f"wrote EXPERIMENTS.md ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
