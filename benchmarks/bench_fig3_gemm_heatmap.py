"""Fig 3: rocBLAS mixed-precision GEMM flop rate vs matrix size.

The paper's heat map shows that peak rate is *not* uniformly achievable
across the sizes an HPL-AI run encounters — the optimal B = 3072 only
peaks for some shapes (Finding 2).
"""

from conftest import run_once

from repro.bench import figures, render_records
from repro.machine import FRONTIER


def test_fig3_gemm_heatmap(benchmark, show):
    rows = run_once(benchmark, figures.fig3_gemm_heatmap)
    show(render_records(rows, title="Fig 3: MI250X GCD GEMM TFLOP/s (m=n rows, k cols)",
                        float_fmt="{:.1f}"))
    # Larger k (the blocksize-controlled inner dimension) gives higher
    # rates at fixed m=n.
    for r in rows:
        assert r["k=3072"] > r["k=256"]
    # Non-uniformity: the same k column varies with m=n (Finding 2/3).
    col = [r["k=3072"] for r in rows]
    assert (max(col) - min(col)) / max(col) > 0.05
    # Rates never exceed the modelled ceiling.
    peak = FRONTIER.gpu_kernels.gemm_peak_tflops
    for r in rows:
        for key, val in r.items():
            if key.startswith("k="):
                assert val <= peak


def test_fig3_b3072_not_uniformly_optimal(benchmark, show):
    # "the optimal B of 3072 would generate highest performance only for
    # a few matrix sizes": at small m=n, B=3072 underperforms its own
    # large-size rate by a wide margin.
    km = FRONTIER.gpu_kernels

    def probe():
        return {
            "small": km.gemm_rate(1024, 1024, 3072) / 1e12,
            "large": km.gemm_rate(12288, 12288, 3072) / 1e12,
        }

    rates = run_once(benchmark, probe)
    show(f"B=3072 rate at m=n=1024: {rates['small']:.1f} TF; "
         f"at m=n=12288: {rates['large']:.1f} TF")
    assert rates["small"] < 0.75 * rates["large"]
