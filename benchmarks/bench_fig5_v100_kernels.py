"""Fig 5: per-iteration GEMM/GETRF/TRSM kernel rates on a V100 GPU."""

from conftest import run_once

from repro.bench import figures, render_records
from repro.machine import SUMMIT


def test_fig5_v100_kernel_curves(benchmark, show):
    blocks = [256, 512, 768, 1024, 2048]
    rows = run_once(
        benchmark, figures.fig56_kernel_curves, SUMMIT, blocks, 61440
    )
    show(render_records(
        [r for r in rows if r["trailing"] in (61440, 30720, 10240)],
        title="Fig 5 (sampled): V100 kernel TFLOP/s by B and trailing size",
    ))
    # Rates grow with B for every kernel (the paper's headline shape).
    at_full = {r["B"]: r for r in rows if r["trailing"] == 61440}
    for small, large in zip(blocks, blocks[1:]):
        assert at_full[large]["getrf_tflops"] >= at_full[small]["getrf_tflops"]
        assert at_full[large]["trsm_tflops"] >= at_full[small]["trsm_tflops"]
    # GETRF is the slow critical-path kernel: far below GEMM at every B.
    for r in rows:
        assert r["getrf_tflops"] < 0.1 * r["gemm_tflops"]
    # B=768 already delivers most of the achievable GEMM rate — why the
    # paper stops there instead of pushing B higher.
    assert at_full[768]["gemm_tflops"] > 0.8 * at_full[2048]["gemm_tflops"]
