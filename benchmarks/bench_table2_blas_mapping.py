"""Table II: cross-platform BLAS library function mapping."""

from conftest import run_once

from repro.bench import figures, render_records


def test_table2_blas_mapping(benchmark, show):
    rows = run_once(benchmark, figures.table2_blas_mapping)
    show(render_records(rows, title="Table II: cross-platform BLAS mapping"))
    by_op = {r["BLAS"]: r for r in rows}
    assert by_op["GEMM"]["Summit"] == "cublasSgemmEx"
    assert by_op["GEMM"]["Frontier"] == "rocblas_gemm_ex"
    assert by_op["GETRF"]["Summit"] == "cusolverDnSgetrf"
    assert by_op["GETRF"]["Frontier"] == "rocsolver_sgetrf"
    # TRSV stays on openBLAS (CPU) on both systems.
    assert by_op["TRSV"]["Summit"] == by_op["TRSV"]["Frontier"]
