"""Cross-validation: analytic model vs discrete-event engine.

The paper stresses its performance model is "a guideline for tuning ...
not a complete model".  This bench quantifies that: for a sweep of
configurations small enough for the event engine, the analytic estimate
must bracket the engine within a known band and — more importantly —
preserve the *orderings* the tuner relies on.
"""

from conftest import run_once

from repro.bench import render_records
from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run
from repro.machine import FRONTIER, SUMMIT
from repro.model.perf_model import estimate_run

CASES = [
    ("frontier ring2m 4x4", FRONTIER, 3072 * 16, 3072, 4, "ring2m"),
    ("frontier bcast  4x4", FRONTIER, 3072 * 16, 3072, 4, "bcast"),
    ("frontier ring2m 6x6", FRONTIER, 3072 * 12, 3072, 6, "ring2m"),
    ("summit   bcast  6x6", SUMMIT, 768 * 64, 768, 6, "bcast"),
    ("summit   ring1  6x6", SUMMIT, 768 * 64, 768, 6, "ring1"),
]


def test_model_vs_engine_sweep(benchmark, show):
    def sweep():
        rows = []
        for label, machine, nl, block, p, algo in CASES:
            cfg = BenchmarkConfig(
                n=nl * p, block=block, machine=machine,
                p_rows=p, p_cols=p, bcast_algorithm=algo,
            )
            eng = simulate_run(cfg)
            mod = estimate_run(cfg)
            rows.append(
                {
                    "case": label,
                    "engine_fact_s": eng.elapsed_factorization,
                    "model_fact_s": mod.elapsed_factorization,
                    "ratio": mod.elapsed_factorization
                    / eng.elapsed_factorization,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(render_records(rows, title="analytic model vs event engine",
                        float_fmt="{:.3f}"))
    # The model is an upper-bound guideline: never wildly off.
    for r in rows:
        assert 0.7 < r["ratio"] < 2.0, r
    # Ordering preservation within each machine's algorithm pair.
    by_case = {r["case"]: r for r in rows}
    eng_order = (by_case["frontier ring2m 4x4"]["engine_fact_s"]
                 < by_case["frontier bcast  4x4"]["engine_fact_s"])
    mod_order = (by_case["frontier ring2m 4x4"]["model_fact_s"]
                 < by_case["frontier bcast  4x4"]["model_fact_s"])
    assert eng_order == mod_order
