"""Roofline analysis: the paper's "well balanced system" claim, quantified.

Not a figure in the paper, but the quantitative backbone of several of
its statements: GEMM must be compute-bound (it is, by ~2-8x margin at
the chosen B), casts are streaming-bound by construction, and the chosen
local sizes N_L sit just above the network roofline's knee — the
surface-to-volume reason "codes should ... run as much as possible on
GPUs given ... the larger high bandwidth memory" (Finding 1).
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_roofline_report(benchmark, show):
    rows = run_once(benchmark, figures.roofline_report)
    show(render_records(rows, title="Roofline analysis", float_fmt="{:.2f}"))

    def point(machine, phase):
        return next(r for r in rows
                    if r["machine"] == machine and r["phase"] == phase)

    for machine in ("summit", "frontier"):
        assert point(machine, "gemm")["bound"] == "compute"
        assert point(machine, "cast")["bound"] == "memory"
        assert point(machine, "iteration (network)")["bound"] == "compute"
        # The paper's N_L sits above (but within 2x of) the network knee.
        knee = point(machine, "min N_L for compute-bound")["flops_per_byte"]
        used = 61440 if machine == "summit" else 119808
        assert knee <= used <= 2.5 * knee
