"""Fig 8: per-GCD performance across communication strategies and
node-local grids, plus the port-binding (Finding 5) and GPU-aware-MPI
(Finding 7) studies.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig8_comm_strategies(benchmark, show):
    rows = run_once(benchmark, figures.fig8_comm_strategies)
    show(render_records(rows, title="Fig 8: GFLOPS/GCD by strategy and node grid"))

    summit = [r for r in rows if r["machine"] == "summit"]
    frontier = [r for r in rows if r["machine"] == "frontier"]

    def lookup(rows_, algo, grid):
        return next(
            r["gflops_per_gcd"] for r in rows_
            if r["algorithm"] == algo and r["grid"] == grid
        )

    # Finding 6 (Summit side): rings do NOT beat the tuned library
    # broadcast; paper measured rings 2.3-11.5% slower.
    for grid in ("3x2", "2x3", "6x1", "1x6"):
        assert lookup(summit, "bcast", grid) >= lookup(summit, "ring1", grid)
    # Summit's best configuration is Bcast (paper: Bcast + 2x3/3x2 grid).
    best_summit = max(summit, key=lambda r: r["gflops_per_gcd"])
    assert best_summit["algorithm"] == "bcast"
    assert best_summit["grid"] in ("3x2", "2x3")

    # The Summit spread best-vs-poorest is enormous because Spectrum
    # MPI's IBcast is pathologically slow (paper: 603% improvement).
    worst_summit = min(summit, key=lambda r: r["gflops_per_gcd"])
    assert worst_summit["algorithm"] == "ibcast"
    spread = best_summit["gflops_per_gcd"] / worst_summit["gflops_per_gcd"] - 1
    assert spread > 3.0

    # Finding 6 (Frontier side): rings outperform the library broadcast
    # (paper: 20.0-34.4%), Ring2M best.
    best_frontier = max(frontier, key=lambda r: r["gflops_per_gcd"])
    assert best_frontier["algorithm"] == "ring2m"
    gains = [
        lookup(frontier, "ring2m", g) / lookup(frontier, "bcast", g) - 1
        for g in ("2x4", "4x2", "8x1", "1x8")
    ]
    assert max(gains) > 0.15, f"ring advantage too small: {gains}"
    assert all(g > 0 for g in gains)

    # Finding 8: grid tuning helps; the Frontier balanced grid beats the
    # 8x1 column-major one for the winning algorithm (paper: 2.7%).
    assert lookup(frontier, "ring2m", "2x4") > lookup(frontier, "ring2m", "8x1")
    # Frontier's grid-tuning benefit is weaker than Summit's (Finding 8).
    summit_grid_gain = lookup(summit, "bcast", "3x2") / lookup(summit, "bcast", "6x1")
    frontier_grid_gain = lookup(frontier, "ring2m", "2x4") / lookup(frontier, "ring2m", "8x1")
    assert frontier_grid_gain < summit_grid_gain * 1.25


def test_fig8_finding5_port_binding(benchmark, show):
    rows = run_once(benchmark, figures.fig8_finding5_port_binding)
    show(render_records(rows, title="Finding 5: Summit port binding",
                        float_fmt="{:.1f}"))
    # Paper: 35.6-59.7% overall improvement across strategies; our model
    # spans that zone (strategy-dependent).
    improvements = [r["improvement_pct"] for r in rows]
    assert min(improvements) > 3.0
    assert max(improvements) > 35.0


def test_fig8_finding7_gpu_aware(benchmark, show):
    rows = run_once(benchmark, figures.fig8_finding7_gpu_aware)
    show(render_records(rows, title="Finding 7: Frontier GPU-aware MPI",
                        float_fmt="{:.1f}"))
    improvements = [r["improvement_pct"] for r in rows]
    # Paper: 40.3-56.6% across settings; GPU-aware must help everywhere
    # and substantially for the broadcast-heavy strategies.
    assert all(i > 0 for i in improvements)
    assert max(improvements) > 25.0
