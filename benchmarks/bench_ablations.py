"""Ablations beyond the paper's exhibits.

- look-ahead on/off (the overlap optimization of Section IV-B);
- end-to-end exact solve as a correctness benchmark (the numerics the
  timing studies rest on);
- event-engine vs analytic-model agreement.
"""

from conftest import run_once

import numpy as np

from repro.bench import figures, render_records
from repro.core.config import BenchmarkConfig
from repro.core.driver import simulate_run, solve_hplai
from repro.machine import FRONTIER
from repro.model.perf_model import estimate_run


def test_ablation_lookahead(benchmark, show):
    rows = run_once(benchmark, figures.ablation_lookahead)
    show(render_records(rows, title="Ablation: look-ahead overlap",
                        float_fmt="{:.1f}"))
    for r in rows:
        assert r["improvement_pct"] > 0, f"look-ahead must help: {r}"


def test_exact_solve_end_to_end(benchmark, show):
    def solve():
        return solve_hplai(n=512, block=64, p_rows=2, p_cols=2)

    res = run_once(benchmark, solve)
    show(f"exact solve N=512: residual={res.residual_norm:.3e}, "
         f"IR iterations={res.ir_iterations}, converged={res.ir_converged}")
    assert res.ir_converged
    assert res.residual_norm < 1e-11
    # The solution actually solves the system.
    from repro.lcg.matrix import HplAiMatrix

    m = HplAiMatrix(512, 42)
    x_ref = np.linalg.solve(m.dense(), m.rhs())
    assert np.max(np.abs(res.x - x_ref)) < 1e-9


def test_mixed_precision_speedup_in_engine(benchmark, show):
    """The 9.5x headline measured end to end in the event engine: the
    same problem solved by distributed FP64 HPL (with pivoting) and by
    mixed-precision HPL-AI on the same Summit model."""
    from repro.core.hpl_dist import solve_hpl_distributed
    from repro.machine import SUMMIT

    def study():
        cfg = BenchmarkConfig(
            n=1024, block=128, machine=SUMMIT, p_rows=2, p_cols=2
        )
        hpl = solve_hpl_distributed(cfg)
        hplai = solve_hplai(n=1024, block=128, p_rows=2, p_cols=2,
                            machine=SUMMIT)
        return {
            "hpl_fp64_s": hpl["t_total"],
            "hplai_mixed_s": hplai.elapsed,
            "speedup": hpl["t_total"] / hplai.elapsed,
            "both_correct": bool(
                np.max(np.abs(hpl["x"] - hplai.x)) < 1e-9
            ),
        }

    rec = run_once(benchmark, study)
    show(render_records([rec], title="in-engine HPL vs HPL-AI (N=1024, "
                        "4 GCDs, Summit model)", float_fmt="{:.4f}"))
    assert rec["both_correct"]
    # Small N underutilizes both; the full-scale analytic ratio is ~10x.
    assert rec["speedup"] > 2.0


def test_ablation_panel_precision(benchmark, show):
    """FP16 vs BF16 panels (beyond the paper): bf16's wider exponent
    range removes the underflow cap on exact N, at the cost of rougher
    factors (7 vs 10 mantissa bits) and therefore more refinement."""

    def study():
        out = []
        for prec in ("fp16", "bf16"):
            res = solve_hplai(n=512, block=64, p_rows=2, p_cols=2,
                              panel_precision=prec)
            out.append({
                "panel": prec,
                "ir_iterations": res.ir_iterations,
                "residual": res.residual_norm,
                "elapsed_s": res.elapsed,
                "converged": res.ir_converged,
            })
        return out

    rows = run_once(benchmark, study)
    show(render_records(rows, title="Ablation: panel precision",
                        float_fmt="{:.3e}"))
    by = {r["panel"]: r for r in rows}
    assert by["fp16"]["converged"] and by["bf16"]["converged"]
    assert by["bf16"]["ir_iterations"] >= by["fp16"]["ir_iterations"]


def test_engine_vs_model_agreement(benchmark, show):
    def study():
        cfg = BenchmarkConfig(
            n=3072 * 16 * 4, block=3072, machine=FRONTIER,
            p_rows=4, p_cols=4, bcast_algorithm="ring2m",
        )
        eng = simulate_run(cfg)
        mod = estimate_run(cfg)
        return {
            "engine_fact_s": eng.elapsed_factorization,
            "model_fact_s": mod.elapsed_factorization,
            "ratio": mod.elapsed_factorization / eng.elapsed_factorization,
        }

    rec = run_once(benchmark, study)
    show(render_records([rec], title="DES engine vs analytic model",
                        float_fmt="{:.3f}"))
    assert 0.7 < rec["ratio"] < 1.8
