"""Fig 9: memory-size weak scaling on both systems.

The paper keeps per-GCD memory constant while growing the machine and
plots GFLOPS/GCD: Summit reaches 91.4% parallel efficiency at 2916 GCDs
column-major and 104.6% (superlinear) with the 3x2 grid; Frontier
reaches 92.2% at 16384 GCDs column-major.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig9_weak_scaling(benchmark, show):
    rows = run_once(benchmark, figures.fig9_weak_scaling)
    show(render_records(rows, title="Fig 9: memory-size weak scaling"))

    def series(machine, grid):
        return [r for r in rows if r["machine"] == machine and r["grid"] == grid]

    # Summit, tuned 3x2 grid: superlinear early scaling (the serial/IR
    # fraction shrinks as factorization work grows), staying >= 95%.
    tuned = series("summit", "3x2")
    assert tuned[-1]["parallel_eff_pct"] > 95.0
    # Superlinearity appears somewhere along the curve (paper: 104.6%).
    assert max(r["parallel_eff_pct"] for r in tuned) > 100.0

    # Column-major Summit stays above 85% but below the tuned grid at
    # the largest scale (Finding 9: mapping tuning worth up to ~10%).
    colmajor = series("summit", "6x1")
    assert colmajor[-1]["parallel_eff_pct"] > 85.0
    assert tuned[-1]["gflops_per_gcd"] >= colmajor[-1]["gflops_per_gcd"]

    # Frontier column-major: high efficiency at the largest simulated
    # scale (paper: 92.2% at 16384 GCDs).
    f_col = series("frontier", "8x1")
    assert f_col[-1]["gcds"] == 16384
    assert f_col[-1]["parallel_eff_pct"] > 85.0

    # Weak memory scaling *increases* GFLOPS/GCD at the beginning of the
    # plot (the paper's distinctive shape).
    assert f_col[1]["gflops_per_gcd"] > f_col[0]["gflops_per_gcd"]
