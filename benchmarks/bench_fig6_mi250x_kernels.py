"""Fig 6: per-iteration GEMM/GETRF/TRSM kernel rates on a MI250X GCD."""

from conftest import run_once

from repro.bench import figures, render_records
from repro.machine import FRONTIER, SUMMIT


def test_fig6_mi250x_kernel_curves(benchmark, show):
    blocks = [512, 1024, 2048, 3072, 4096]
    rows = run_once(
        benchmark, figures.fig56_kernel_curves, FRONTIER, blocks, 119808
    )
    show(render_records(
        [r for r in rows if r["trailing"] in (119808, 59904, 19968)],
        title="Fig 6 (sampled): MI250X GCD kernel TFLOP/s by B and trailing size",
    ))
    at_full = {r["B"]: r for r in rows if r["trailing"] == 119808}
    # rocBLAS needs a much larger B than cuBLAS to saturate (Finding 3):
    # at B = 1024 the MI250X reaches a smaller fraction of its own peak
    # than the V100 does.
    v100 = SUMMIT.gpu_kernels
    mi = FRONTIER.gpu_kernels
    frac_mi = at_full[1024]["gemm_tflops"] / (mi.gemm_peak_tflops)
    frac_v100 = v100.gemm_rate(61440, 61440, 1024) / 1e12 / v100.gemm_peak_tflops
    assert frac_mi < frac_v100
    # B = 3072 recovers a healthy fraction of the kernel ceiling — and a
    # clear step over B = 2048 (rocBLAS saturates late in B; Finding 3).
    assert at_full[3072]["gemm_tflops"] > 0.7 * mi.gemm_peak_tflops
    assert at_full[3072]["gemm_tflops"] > 1.1 * at_full[2048]["gemm_tflops"]
    # rocSOLVER GETRF underperforms (Finding 3): below 1.5 TF even at B=4096.
    assert at_full[4096]["getrf_tflops"] < 1.5
