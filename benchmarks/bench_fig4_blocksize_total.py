"""Fig 4: total per-GCD performance vs block size B at scale.

Summit at 2916 GCDs (P_r = 54) and Frontier at 1024 GCDs (P_r = 32);
the paper selects B = 768 for V100 and B = 3072 for MI250X.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig4_blocksize_total(benchmark, show):
    rows = run_once(benchmark, figures.fig4_blocksize_total)
    show(render_records(
        rows, title="Fig 4: GFLOPS/GCD vs B (distinct comm layouts)",
        columns=["machine", "B", "gflops_per_gcd", "exposed_comm_s", "getrf_s"],
    ))
    summit = {r["B"]: r["gflops_per_gcd"] for r in rows if r["machine"] == "summit"}
    frontier = {r["B"]: r["gflops_per_gcd"] for r in rows if r["machine"] == "frontier"}

    # Paper: B = 768 (or 1024) optimal on Summit's V100s.
    best_summit = max(summit, key=summit.get)
    assert best_summit in (768, 1024), f"Summit optimum drifted to B={best_summit}"
    # Too-small B hurts (communication/GETRF bound); it must trail the peak.
    assert summit[256] < 0.9 * summit[best_summit]

    # Paper: B = 3072 optimal on Frontier's MI250X.
    best_frontier = max(frontier, key=frontier.get)
    assert best_frontier >= 2304, f"Frontier optimum drifted to B={best_frontier}"
    assert frontier[512] < frontier[best_frontier]
