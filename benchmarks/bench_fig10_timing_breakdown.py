"""Fig 10: per-iteration component timing breakdown on Frontier, 64 GCDs.

Runs the discrete-event engine (real rank programs, phantom payloads)
and reports rank 0's per-iteration phase times: the benchmark is
compute-bound until the final trailing iterations, where communication
waits dominate.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig10_timing_breakdown(benchmark, show):
    rows = run_once(benchmark, figures.fig10_timing_breakdown)
    show(render_records(rows, title="Fig 10: per-iteration breakdown (rank 0)",
                        float_fmt="{:.4f}"))
    assert len(rows) > 5
    # rows[0] includes the look-ahead pipeline fill; use the next sample
    # as the steady-state early point.
    early, last = rows[1], rows[-1]
    # Early iterations: GEMM dominates (computationally bound).
    assert early["gemm_s"] > early["comm_wait_s"]
    assert early["comm_fraction_pct"] < 25.0
    # GEMM time shrinks dramatically toward the end.
    assert last["gemm_s"] < 0.2 * early["gemm_s"]
    # "the HPL-AI benchmark is computationally bounded until the final
    # trailing iterations": the tail is communication-dominated.
    assert last["comm_fraction_pct"] > 60.0


def test_fig10_gantt_view(benchmark, show):
    """Per-rank Gantt of a small run: the visual form of Fig 10."""
    from repro.core.config import BenchmarkConfig
    from repro.core.executors import PhantomExecutor
    from repro.core.hplai import hplai_rank_program
    from repro.machine import FRONTIER, CommCosts
    from repro.simulate import Engine
    from repro.simulate.timeline import busy_fraction, render_gantt

    def run():
        cfg = BenchmarkConfig(n=3072 * 8, block=3072, machine=FRONTIER,
                              p_rows=2, p_cols=2, bcast_algorithm="ring2m")
        engine = Engine(
            4, CommCosts(FRONTIER),
            node_of_rank=cfg.node_grid.node_of_rank,
            mpi=FRONTIER.mpi, record_timeline=True,
        )

        def factory(rank):
            pir, pic = cfg.grid.coords_of(rank)
            return hplai_rank_program(
                cfg, PhantomExecutor(cfg, pir, pic, rank), rank, None
            )

        result = engine.run(factory)
        return engine.timeline, result.elapsed

    timeline, elapsed = run_once(benchmark, run)
    show(render_gantt(timeline, width=96))
    fractions = busy_fraction(timeline, elapsed)
    # The GPUs stay predominantly busy (compute-bound run).
    assert all(f > 0.5 for f in fractions.values())
