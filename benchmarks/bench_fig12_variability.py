"""Fig 12: performance variability over six consecutive runs.

Summit's first run in a batch job is ~20% slower (cold file-system
caches); later runs agree to 0.12%.  Frontier's first two runs are
slightly *faster*; later runs settle ~0.34% lower (thermal control).
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig12_variability(benchmark, show):
    rows = run_once(benchmark, figures.fig12_variability)
    show(render_records(rows, title="Fig 12: six consecutive runs",
                        float_fmt="{:.2f}"))
    summit = [r for r in rows if r["machine"] == "summit"]
    frontier = [r for r in rows if r["machine"] == "frontier"]

    # Summit: first run ~20% down; subsequent runs within ~0.3%.
    assert summit[0]["relative_perf_pct"] < 85.0
    later = [r["relative_perf_pct"] for r in summit[1:]]
    assert max(later) - min(later) < 0.5

    # Frontier: first two runs above the settled level.
    settled = [r["relative_perf_pct"] for r in frontier[2:]]
    assert frontier[0]["relative_perf_pct"] > max(settled)
    assert frontier[1]["relative_perf_pct"] > max(settled)
    assert max(settled) - min(settled) < 0.5
