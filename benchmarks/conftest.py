"""Shared helpers for the figure/table regeneration benchmarks.

Every benchmark in this directory regenerates one exhibit of the paper's
evaluation section, prints the series it produces (so CI logs double as
the reproduction record), and asserts the paper's qualitative findings —
who wins, by roughly what factor, where crossovers fall.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print a rendered table under pytest -s without extra imports."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run a generator function exactly once under pytest-benchmark.

    These are simulation/model workloads, not microbenchmarks; one round
    is both sufficient and necessary (some cost minutes at full scale).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
