"""Fig 7: MI250X GEMM performance vs leading dimension (LDA).

LDA = 122880 (a multiple of 8192) loses ~45% GEMM throughput; the
paper therefore runs N_L = 119808 even though more memory is available
(Section V-D).
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig7_lda_effect(benchmark, show):
    rows = run_once(benchmark, figures.fig7_lda_effect)
    show(render_records(
        [r for r in rows if r["gemm_size"] > 80000],
        title="Fig 7 (large sizes): GEMM TFLOP/s by LDA",
    ))
    by_lda = {}
    for r in rows:
        by_lda.setdefault(r["LDA"], []).append(r["gemm_tflops"])
    means = {lda: sum(v) / len(v) for lda, v in by_lda.items()}
    # 122880 is significantly below every other LDA.
    for lda, mean in means.items():
        if lda == 122880:
            continue
        assert means[122880] < 0.7 * mean, (
            f"LDA=122880 should trail LDA={lda}: {means}"
        )
    # The healthy LDAs are mutually close (within 15%).
    healthy = [m for lda, m in means.items() if lda != 122880]
    assert max(healthy) / min(healthy) < 1.15
