"""Section V-D: N_L tuning — 119808 beats 122880 at 64/256/1024 GCDs.

The larger local size loses because LDA = 122880 is a multiple of 8192
and triggers rocBLAS's leading-dimension pathology (Fig 7), so *more
work at a lower rate* nets out slower per GCD.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_nl_tuning(benchmark, show):
    rows = run_once(benchmark, figures.nl_tuning)
    show(render_records(rows, title="Section V-D: N_L tuning on Frontier"))
    for gcds in (64, 256, 1024):
        subset = {r["N_L"]: r["gflops_per_gcd"] for r in rows if r["gcds"] == gcds}
        assert subset[119808] > subset[122880], (
            f"at {gcds} GCDs, N_L=119808 must beat 122880: {subset}"
        )
