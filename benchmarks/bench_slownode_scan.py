"""Section VI-B: the slow-node identification mini-benchmark.

Scans a seeded 1024-GCD fleet, reproduces the ~5% max GCD variation the
paper observed on Frontier, and quantifies the speed-up from excluding
slow nodes (a single slow GCD stalls the whole pipeline).
"""

from conftest import run_once

from repro.bench import figures, render_records
from repro.machine import FRONTIER, GcdFleet
from repro.tools import scan_fleet


def test_slownode_scan(benchmark, show):
    rows = run_once(benchmark, figures.slownode_scan)
    show(render_records(rows, title="Slow-GCD scan (1024 GCDs)",
                        float_fmt="{:.3f}"))
    rec = rows[0]
    # ~5% maximum variation between GCDs (paper's Frontier observation).
    assert 3.0 < rec["max_variation_pct"] < 8.0
    assert rec["slow_gcds"] > 0
    assert rec["projected_speedup"] > 1.0


def test_slownode_exclusion_improves_run(benchmark, show):
    # End-to-end effect: an achievement-style run modelled with the
    # pipeline multiplier before/after exclusion.
    from repro.core.config import BenchmarkConfig
    from repro.model.perf_model import estimate_run

    def study():
        fleet = GcdFleet(1024, seed=2022)
        report = scan_fleet(fleet, FRONTIER)
        cfg = BenchmarkConfig(
            n=119808 * 32, block=3072, machine=FRONTIER,
            p_rows=32, p_cols=32, q_rows=2, q_cols=4,
            bcast_algorithm="ring2m",
        )
        before = estimate_run(cfg, pipeline_multiplier=report.pipeline_before)
        after = estimate_run(cfg, pipeline_multiplier=report.pipeline_after)
        return {
            "before_gflops": before.gflops_per_gcd,
            "after_gflops": after.gflops_per_gcd,
            "gain_pct": 100.0 * (after.gflops_per_gcd / before.gflops_per_gcd - 1),
        }

    rec = run_once(benchmark, study)
    show(render_records([rec], title="Run speed before/after slow-node exclusion"))
    assert rec["after_gflops"] > rec["before_gflops"]
