"""Fig 11: the exascale achievement runs.

Summit: 1.411 EFLOPS (N = 9,953,280, B = 768, P = 162x162, 3x2 grid,
library Bcast).  Frontier (~40% of the system): 2.387 EFLOPS
(N = 20,606,976, B = 3072, P = 172x172, Ring2M, 4x2 grid).  The paper
also projects >5 EFLOPS for full-scale Frontier.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_fig11_exascale_runs(benchmark, show):
    rows = run_once(benchmark, figures.fig11_exascale_runs)
    show(render_records(rows, title="Fig 11: exascale achievement runs",
                        float_fmt="{:.3f}"))
    by_run = {r["run"].split()[0]: r for r in rows}

    summit = by_run["summit"]
    frontier = by_run["frontier"]
    # Both runs land within 15% of the paper's sustained figures and
    # both exceed an exaflop.
    assert 0.85 < summit["ratio_vs_paper"] < 1.15
    assert 0.85 < frontier["ratio_vs_paper"] < 1.15
    assert summit["measured_eflops"] > 1.0
    assert frontier["measured_eflops"] > 2.0

    # "the N is over 20M compared with the ~10M for Summit": Frontier
    # solves a much larger problem on a fraction of the machine.
    assert frontier["N"] > 2.0 * summit["N"]

    # The full-Frontier projection clears the paper's 5 EFLOPS bar.
    full = next(r for r in rows if "full" in r["run"])
    assert full["measured_eflops"] > 5.0


def test_hpl_vs_hplai(benchmark, show):
    rows = run_once(benchmark, figures.hpl_vs_hplai)
    show(render_records(rows, title="HPL-AI vs HPL per-GCD throughput",
                        float_fmt="{:.2f}"))
    summit = next(r for r in rows if r["machine"] == "summit")
    # Paper headline: 9.5x HPL on Summit; accept the 8-12x zone.
    assert 8.0 < summit["speedup"] < 12.0
    frontier = next(r for r in rows if r["machine"] == "frontier")
    assert frontier["speedup"] > 4.0  # mixed precision wins everywhere


def test_frontier_vs_summit_projection(benchmark, show):
    rows = run_once(benchmark, figures.frontier_vs_summit_projection)
    show(render_records(rows, title="Full-scale Frontier vs Summit "
                        "(paper expectation: ~3x)", float_fmt="{:.2f}"))
    rec = rows[0]
    # "about 3x": the model lands at 3-4x once Frontier's larger N and
    # node count compound (paper's 3x was a pre-run estimate from the
    # 1.58x per-node figure alone).
    assert 2.5 < rec["ratio"] < 4.5
