"""Hot-path harness smoke benchmark: the optimization contract, in CI.

Runs the ``bench hotpaths`` harness at a small size and asserts the two
properties the exact-path overhaul promises: the tile cache makes warm
fill dramatically cheaper than cold generation, and the optimized solve
remains deterministic (identical checksums across runs).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.hotpaths import SCHEMA, render_hotpaths, run_hotpaths


def test_hotpaths_harness(benchmark, show, tmp_path):
    out = tmp_path / "BENCH_hotpaths.json"
    record = run_once(
        benchmark, run_hotpaths,
        n=256, block=32, grid=2, reps=2, out=str(out),
    )
    show(render_hotpaths(record))

    assert record["schema"] == SCHEMA
    assert out.exists()
    stages = {r["stage"]: r for r in record["results"]}

    # The tile cache must beat regeneration by a wide margin.
    assert stages["lcg_fill_warm"]["mean_s"] < stages["lcg_fill_cold"]["mean_s"]

    # End-to-end checksums present and stable across a second harness run.
    ref = record["reference"]
    assert ref["x_sha256"] and ref["ipiv_sha256"]
    again = run_hotpaths(n=256, block=32, grid=2, reps=1, out=None)
    assert again["reference"] == ref
