"""Table I: key architectural specifications for Summit and Frontier."""

from conftest import run_once

from repro.bench import figures, render_records


def test_table1_specs(benchmark, show):
    rows = run_once(benchmark, figures.table1_specs)
    show(render_records(rows, title="Table I: architectural specifications"))
    by_spec = {r["spec"]: r for r in rows}
    assert by_spec["Number of Nodes"]["Summit"] == 4608
    assert by_spec["Number of Nodes"]["Frontier"] == 9408
    assert by_spec["FP16 TFLOPS (Node)"]["Summit"] == "750"
    assert by_spec["FP16 TFLOPS (Node)"]["Frontier"] == "1192"
    assert by_spec["# of NICs"]["Summit"] == 2
    assert by_spec["# of NICs"]["Frontier"] == 4
