"""Section VI-A: strong scaling.

The paper reports (without a chart, "due to limited space") that under
strong scaling the application becomes communication bound at scale,
matching the communication and panel-solve terms of the performance
model.
"""

from conftest import run_once

from repro.bench import figures, render_records


def test_strong_scaling(benchmark, show):
    rows = run_once(benchmark, figures.strong_scaling)
    show(render_records(rows, title="Section VI-A: strong scaling (Summit)"))
    assert len(rows) >= 3
    # Time keeps dropping with more GCDs...
    for a, b in zip(rows, rows[1:]):
        assert b["elapsed_s"] < a["elapsed_s"]
    # ...but efficiency decays monotonically: communication/panel terms
    # stop amortizing (the paper's observation).
    for a, b in zip(rows, rows[1:]):
        assert b["strong_eff_pct"] < a["strong_eff_pct"]
    assert rows[-1]["strong_eff_pct"] < 60.0
